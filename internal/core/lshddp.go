package core

import (
	"math"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/lsh"
)

// LSHDDP is the LSH-DDP baseline (Zhang, Chen & Yu, TKDE 2016), the prior
// state-of-the-art approximate DPC, here in its multicore form. Points are
// bucketed by M compound p-stable LSH tables; each point's local density
// and dependent point are estimated from its bucket-mates, with a full
// scan fallback for points whose bucket holds no denser candidate (the
// paper's accuracy refinement).
//
// Parallelization is a static equal-count partition of the points —
// deliberately without load balancing, because LSH bucket sizes vary wildly
// and the paper's Figure 9 attributes LSH-DDP's poor thread scaling to
// exactly this.
type LSHDDP struct {
	// Params overrides the LSH configuration; zero value means
	// lsh.DefaultParams(DCut) seeded from Params.Seed.
	Params lsh.Params
}

// Name implements Algorithm.
func (LSHDDP) Name() string { return "LSH-DDP" }

// Cluster implements Algorithm.
func (a LSHDDP) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a LSHDDP) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	lp := a.Params
	if lp.Tables == 0 && lp.Hashes == 0 && lp.Width == 0 {
		lp = lsh.DefaultParams(p.DCut)
		lp.Seed = p.Seed + 1
	}

	start := time.Now()
	forest := lsh.Build(ds, lp)
	res.Timing.Build = time.Since(start)

	sq := p.DCut * p.DCut

	// Approximate local densities: bucket-mates within d_cut, plus self.
	start = time.Now()
	staticPartition(n, workers, func(lo, hi int) {
		stamp := make([]int32, n)
		for i := lo; i < hi; i++ {
			pi := ds.At(i)
			count := 1 // self
			forest.Candidates(int32(i), stamp, int32(i)+1, func(j int32) {
				if v, ok := geom.SqDistToIdxPartial(ds, pi, j, sq); ok && v < sq {
					count++
				}
			})
			res.Rho[i] = float64(count) + jitter(i)
		}
	})
	res.Timing.Rho = time.Since(start)

	// Approximate dependent points: nearest denser bucket-mate; full scan
	// fallback when no bucket-mate is denser.
	start = time.Now()
	staticPartition(n, workers, func(lo, hi int) {
		stamp := make([]int32, n)
		for i := lo; i < hi; i++ {
			pi := ds.At(i)
			bestSq := math.Inf(1)
			best := NoDependent
			forest.Candidates(int32(i), stamp, int32(i)+1, func(j int32) {
				if res.Rho[j] <= res.Rho[i] {
					return
				}
				if v, ok := geom.SqDistToIdxPartial(ds, pi, j, bestSq); ok && v < bestSq {
					bestSq, best = v, j
				}
			})
			if best == NoDependent {
				// "If the distance between p and its approximate dependent
				// point does not seem accurate, LSH-DDP computes its
				// dependent point by scanning P."
				for j := 0; j < n; j++ {
					if res.Rho[j] <= res.Rho[i] {
						continue
					}
					if v, ok := geom.SqDistToIdxPartial(ds, pi, int32(j), bestSq); ok && v < bestSq {
						bestSq, best = v, int32(j)
					}
				}
			}
			res.Dep[i] = best
			if best == NoDependent {
				res.Delta[i] = math.Inf(1) // global density peak
			} else {
				res.Delta[i] = math.Sqrt(bestSq)
			}
		}
	})
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}

// staticPartition splits [0, n) into `workers` equal contiguous blocks and
// runs fn(lo, hi) for each on its own goroutine — static scheduling with
// no load balancing, as LSH-DDP's original MapReduce formulation implies.
func staticPartition(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
