package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomDataset builds a small random mixture for property checks.
func randomDataset(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, n)
	k := 1 + rng.Intn(4)
	for len(pts) < n {
		cx := float64(rng.Intn(k)) * 60
		cy := float64(rng.Intn(k)) * 60
		pts = append(pts, []float64{cx + rng.NormFloat64()*7, cy + rng.NormFloat64()*7})
	}
	return pts
}

// Property: Ex-DPC equals Scan on arbitrary inputs (both exact).
func TestPropertyExEqualsScan(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomDataset(seed, 120)
		p := Params{DCut: 10, RhoMin: 2, DeltaMin: 35, Workers: 2}
		a, err1 := Scan{}.Cluster(pts, p)
		b, err2 := ExDPC{}.Cluster(pts, p)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range pts {
			if a.Labels[i] != b.Labels[i] || a.Rho[i] != b.Rho[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: for exact algorithms, delta[i] is exactly the distance to
// dep[i], and dep[i] is strictly denser.
func TestPropertyDeltaConsistency(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomDataset(seed, 100)
		p := Params{DCut: 10, RhoMin: 1, DeltaMin: 30, Workers: 2}
		res, err := ExDPC{}.Cluster(pts, p)
		if err != nil {
			return false
		}
		for i := range pts {
			dep := res.Dep[i]
			if dep == NoDependent {
				if !math.IsInf(res.Delta[i], 1) {
					return false
				}
				continue
			}
			if math.Abs(res.Delta[i]-geom.Dist(pts[i], pts[dep])) > 1e-9 {
				return false
			}
			if res.Rho[dep] <= res.Rho[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Approx-DPC's recorded dependent distance never falls below the
// exact one (it records d_cut for points whose exact delta is <= d_cut
// and the exact value otherwise) — the inequality behind Theorem 4.
func TestPropertyApproxDeltaDominates(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomDataset(seed, 150)
		p := Params{DCut: 10, RhoMin: 1, DeltaMin: 30, Workers: 2}
		ex, err1 := ExDPC{}.Cluster(pts, p)
		ap, err2 := ApproxDPC{}.Cluster(pts, p)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range pts {
			if math.IsInf(ex.Delta[i], 1) {
				continue
			}
			if ap.Delta[i] < ex.Delta[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: label propagation is closed — every non-noise point shares
// its dependent point's label, for every algorithm.
func TestPropertyLabelClosure(t *testing.T) {
	algs := allAlgorithms()
	f := func(seed int64) bool {
		pts := randomDataset(seed, 130)
		p := Params{DCut: 10, RhoMin: 2, DeltaMin: 32, Workers: 2, Epsilon: 0.6, Seed: seed}
		for _, alg := range algs {
			res, err := alg.Cluster(pts, p)
			if err != nil {
				return false
			}
			centerOf := make(map[int32]bool)
			for _, c := range res.Centers {
				centerOf[c] = true
			}
			for i := range pts {
				l := res.Labels[i]
				if l == NoCluster || centerOf[int32(i)] {
					continue
				}
				dep := res.Dep[i]
				if dep < 0 {
					return false // non-center, non-noise point without a dependent
				}
				if res.Labels[dep] != l {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: cluster count equals the number of centers, and centers are
// exactly the points with delta >= DeltaMin and rho >= RhoMin.
func TestPropertyCenterDefinition(t *testing.T) {
	f := func(seed int64) bool {
		pts := randomDataset(seed, 110)
		p := Params{DCut: 10, RhoMin: 2, DeltaMin: 31, Workers: 2}
		res, err := ExDPC{}.Cluster(pts, p)
		if err != nil {
			return false
		}
		want := 0
		for i := range pts {
			if res.Rho[i] >= p.RhoMin && res.Delta[i] >= p.DeltaMin {
				want++
			}
		}
		return res.NumClusters() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: S-Approx-DPC at any epsilon yields a valid partition whose
// cluster count is at least 1 on non-degenerate data.
func TestPropertySApproxValidAtAnyEpsilon(t *testing.T) {
	f := func(seed int64, epsRaw float64) bool {
		eps := math.Mod(math.Abs(epsRaw), 2.0)
		if eps < 0.05 || math.IsNaN(eps) {
			eps = 0.5
		}
		pts := randomDataset(seed, 140)
		p := Params{DCut: 10, RhoMin: 1, DeltaMin: 30, Workers: 2, Epsilon: eps}
		res, err := SApproxDPC{}.Cluster(pts, p)
		if err != nil {
			return false
		}
		if res.NumClusters() < 1 {
			return false
		}
		k := int32(res.NumClusters())
		for _, l := range res.Labels {
			if l < NoCluster || l >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
