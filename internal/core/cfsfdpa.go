package core

import (
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/kmeans"
	"repro/internal/partition"
)

// CFSFDPA is the CFSFDP-A baseline (Bai et al., Pattern Recognition 2017),
// the prior state-of-the-art exact algorithm. It selects k pivot points
// with k-means, keeps each point's distance to every pivot, and prunes
// density candidates with the triangle inequality: q can be within d_cut
// of p only if |dist(p,v) - dist(q,v)| < d_cut for every pivot v. Points
// are grouped per assigned pivot and sorted by pivot distance, so the
// primary filter is a binary-searched window per group.
//
// As in the paper's experiments, dependent distances use Scan's method
// (Table 1 shows CFSFDP-A's own dependent-point step is slower than
// Scan's, so the paper substitutes it).
type CFSFDPA struct {
	// Pivots is k; 0 means round(sqrt(n)) clamped to [4, 256].
	Pivots int
}

// Name implements Algorithm.
func (CFSFDPA) Name() string { return "CFSFDP-A" }

// Cluster implements Algorithm.
func (a CFSFDPA) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a CFSFDPA) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	k := a.Pivots
	if k <= 0 {
		k = int(math.Round(math.Sqrt(float64(n))))
		if k < 4 {
			k = 4
		}
		if k > 256 {
			k = 256
		}
	}

	start := time.Now()
	km := kmeans.Run(ds, k, 20, p.Seed+2)
	k = len(km.Centroids)
	// Per-point distance to every pivot: the filter's precomputed table.
	pivDist := make([][]float64, n)
	partition.DynamicChunked(n, workers, 64, func(i int) {
		row := make([]float64, k)
		for c := 0; c < k; c++ {
			row[c] = geom.Dist(ds.At(i), km.Centroids[c])
		}
		pivDist[i] = row
	})
	// Group members per assigned pivot, sorted by distance to that pivot.
	groups := make([][]int32, k)
	for i := 0; i < n; i++ {
		c := km.Assign[i]
		groups[c] = append(groups[c], int32(i))
	}
	partition.Dynamic(k, workers, func(c int) {
		g := groups[c]
		sort.Slice(g, func(a, b int) bool { return pivDist[g[a]][c] < pivDist[g[b]][c] })
	})
	res.Timing.Build = time.Since(start)

	sq := p.DCut * p.DCut
	start = time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		pi := ds.At(i)
		count := 0
		for c := 0; c < k; c++ {
			g := groups[c]
			center := pivDist[i][c]
			lo := sort.Search(len(g), func(t int) bool { return pivDist[g[t]][c] > center-p.DCut })
			for t := lo; t < len(g); t++ {
				j := g[t]
				dj := pivDist[j][c]
				if dj >= center+p.DCut {
					break // window end: |d_i - d_j| >= d_cut ⇒ dist >= d_cut
				}
				if v, ok := geom.SqDistToIdxPartial(ds, pi, j, sq); ok && v < sq {
					count++
				}
			}
		}
		res.Rho[i] = float64(count) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	res.Delta, res.Dep = scanDelta(ds, res.Rho, workers)
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
