package core
