package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// ComputeHalo flags the cluster halo of the original DPC paper (Rodriguez
// & Laio 2014): for each cluster, the border density rho_b is the highest
// density among its points that lie within d_cut of a point from another
// cluster; members with rho < rho_b form the halo — the low-confidence
// fringe where clusters touch. Amagata & Hara's §6 discusses exactly these
// border points as the residual error source of the approximations.
//
// The returned slice marks halo membership per point (noise points are
// never halo; they are already excluded). The computation is one range
// search per point, parallelized like a density phase.
func ComputeHalo(pts [][]float64, res *Result, dcut float64, workers int) ([]bool, error) {
	ds, err := geom.FromRows(pts)
	if err != nil {
		return nil, err
	}
	return ComputeHaloDataset(ds, res, dcut, workers)
}

// ComputeHaloDataset is ComputeHalo over a flat dataset (no copy).
func ComputeHaloDataset(ds *geom.Dataset, res *Result, dcut float64, workers int) ([]bool, error) {
	n := ds.N
	if len(res.Labels) != n || len(res.Rho) != n {
		return nil, fmt.Errorf("core: result does not match dataset (%d labels for %d points)", len(res.Labels), n)
	}
	if dcut <= 0 {
		return nil, fmt.Errorf("core: non-positive dcut")
	}
	if workers <= 0 {
		workers = 1
	}
	tree := kdtree.BuildAll(ds)
	k := res.NumClusters()
	// Per-cluster border density, accumulated with per-worker maxima to
	// stay lock-free.
	borderRho := make([]float64, k)
	type workerMax struct {
		v []float64
		_ [64]byte // avoid false sharing between worker slots
	}
	locals := make([]workerMax, workers)
	for w := range locals {
		locals[w].v = make([]float64, k)
	}
	// Partition points across workers deterministically.
	partition.DynamicChunked(workers, workers, 1, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		mine := locals[w].v
		for i := lo; i < hi; i++ {
			li := res.Labels[i]
			if li == NoCluster {
				continue
			}
			touchesOther := false
			tree.RangeSearch(ds.At(i), dcut, func(j int32, _ float64) {
				if touchesOther {
					return
				}
				lj := res.Labels[j]
				if lj != li && lj != NoCluster {
					touchesOther = true
				}
			})
			if touchesOther && res.Rho[i] > mine[li] {
				mine[li] = res.Rho[i]
			}
		}
	})
	for w := range locals {
		for c := 0; c < k; c++ {
			if locals[w].v[c] > borderRho[c] {
				borderRho[c] = locals[w].v[c]
			}
		}
	}
	halo := make([]bool, n)
	for i := 0; i < n; i++ {
		li := res.Labels[i]
		if li == NoCluster {
			continue
		}
		if res.Rho[i] < borderRho[li] {
			halo[i] = true
		}
	}
	return halo, nil
}
