package core

import (
	"math/rand"
	"testing"
)

func TestHaloTwoTouchingBlobs(t *testing.T) {
	// Two blobs close enough that their fringes are within d_cut of each
	// other: the fringe becomes halo, the cores do not.
	rng := rand.New(rand.NewSource(1))
	var pts [][]float64
	for i := 0; i < 400; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
	}
	for i := 0; i < 400; i++ {
		pts = append(pts, []float64{55 + rng.NormFloat64()*10, rng.NormFloat64() * 10})
	}
	p := Params{DCut: 8, RhoMin: 2, DeltaMin: 25, Workers: 4}
	res, err := ExDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Skipf("setup produced %d clusters", res.NumClusters())
	}
	halo, err := ComputeHalo(pts, res, p.DCut, 4)
	if err != nil {
		t.Fatal(err)
	}
	haloCount := 0
	for i := range halo {
		if halo[i] {
			haloCount++
			if res.Labels[i] == NoCluster {
				t.Fatal("noise point marked halo")
			}
		}
	}
	if haloCount == 0 {
		t.Error("touching blobs must have a halo")
	}
	// Cluster centers (density peaks) are never halo.
	for _, c := range res.Centers {
		if halo[c] {
			t.Errorf("center %d marked halo", c)
		}
	}
}

func TestHaloIsolatedBlobsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := grid2D(rng, 2, 200, 500, 8) // far-apart blobs
	p := Params{DCut: 20, RhoMin: 2, DeltaMin: 100, Workers: 2}
	res, _ := ExDPC{}.Cluster(pts, p)
	halo, err := ComputeHalo(pts, res, p.DCut, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range halo {
		if h {
			t.Fatalf("isolated blobs produced halo at %d", i)
		}
	}
}

func TestHaloValidation(t *testing.T) {
	pts := [][]float64{{1, 1}}
	res := &Result{Labels: []int32{0, 1}, Rho: []float64{1, 2}}
	if _, err := ComputeHalo(pts, res, 1, 2); err == nil {
		t.Error("mismatched result accepted")
	}
	res2 := &Result{Labels: []int32{0}, Rho: []float64{1}}
	if _, err := ComputeHalo(pts, res2, 0, 2); err == nil {
		t.Error("zero dcut accepted")
	}
}

func TestHaloWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts [][]float64
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, []float64{40 + rng.NormFloat64()*10, rng.NormFloat64() * 10})
	}
	p := Params{DCut: 8, RhoMin: 2, DeltaMin: 22, Workers: 2}
	res, _ := ExDPC{}.Cluster(pts, p)
	a, err := ComputeHalo(pts, res, p.DCut, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeHalo(pts, res, p.DCut, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("halo differs across worker counts at %d", i)
		}
	}
}
