package core

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
)

func otherAlgorithms() []Algorithm {
	return []Algorithm{FastDPeak{}, DPCG{}, CFSFDPDE{}}
}

func TestOthersBasicContract(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := gaussianMix(rng, 3, 120, 20, 2, 500, 10)
	p := Params{DCut: 20, RhoMin: 3, DeltaMin: 60, Workers: 4, Seed: 2}
	for _, alg := range otherAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(res.Rho) != len(pts) || len(res.Labels) != len(pts) {
			t.Fatalf("%s: wrong result sizes", alg.Name())
		}
		k := int32(res.NumClusters())
		for i, l := range res.Labels {
			if l < NoCluster || l >= k {
				t.Fatalf("%s: label[%d]=%d out of range", alg.Name(), i, l)
			}
		}
		if res.Timing.Rho <= 0 || res.Timing.Delta <= 0 {
			t.Errorf("%s: timing not populated", alg.Name())
		}
	}
}

// TestFastDPeakAndDPCGExactness: both compute Definition-1 densities and
// (in this implementation) exact dependent points, so their labels must
// match Scan's exactly.
func TestFastDPeakAndDPCGMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := gaussianMix(rng, 4, 100, 20, 2, 600, 10)
	p := Params{DCut: 20, RhoMin: 3, DeltaMin: 70, Workers: 4, Seed: 3}
	ref, err := Scan{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{FastDPeak{}, DPCG{}} {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for i := range pts {
			if res.Rho[i] != ref.Rho[i] {
				t.Fatalf("%s: rho[%d] = %v, want %v", alg.Name(), i, res.Rho[i], ref.Rho[i])
			}
			if !almostEq(res.Delta[i], ref.Delta[i]) {
				t.Fatalf("%s: delta[%d] = %v, want %v", alg.Name(), i, res.Delta[i], ref.Delta[i])
			}
			if res.Labels[i] != ref.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", alg.Name(), i, res.Labels[i], ref.Labels[i])
			}
		}
	}
}

// TestCFSFDPDELowAccuracy: the density-estimate variant should be clearly
// less accurate than Approx-DPC on a dataset with overlapping structure —
// the observation that led the paper to drop it.
func TestCFSFDPDEAccuracyBelowApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := gaussianMix(rng, 6, 200, 100, 2, 800, 25) // overlapping blobs
	p := Params{DCut: 30, RhoMin: 3, DeltaMin: 95, Workers: 4, Seed: 4}
	truth, err := ExDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := ApproxDPC{}.Cluster(pts, p)
	de, err := CFSFDPDE{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	riAp := eval.RandIndex(truth.Labels, ap.Labels)
	riDe := eval.RandIndex(truth.Labels, de.Labels)
	if riDe > riAp {
		t.Errorf("CFSFDP-DE (%.3f) should not beat Approx-DPC (%.3f)", riDe, riAp)
	}
}

func TestOthersWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := gaussianMix(rng, 3, 80, 10, 2, 400, 10)
	for _, alg := range otherAlgorithms() {
		var ref *Result
		for _, w := range []int{1, 4} {
			p := Params{DCut: 18, RhoMin: 2, DeltaMin: 60, Workers: w, Seed: 5}
			res, err := alg.Cluster(pts, p)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for i := range pts {
				if res.Labels[i] != ref.Labels[i] {
					t.Fatalf("%s: labels differ across worker counts", alg.Name())
				}
			}
		}
	}
}

func TestOthersTinyInputs(t *testing.T) {
	p := Params{DCut: 1, RhoMin: 0, DeltaMin: 2, Workers: 2}
	for _, alg := range otherAlgorithms() {
		res, err := alg.Cluster([][]float64{{5, 5}}, p)
		if err != nil {
			t.Fatalf("%s single point: %v", alg.Name(), err)
		}
		if res.NumClusters() != 1 {
			t.Errorf("%s: single point gave %d clusters", alg.Name(), res.NumClusters())
		}
		if _, err := alg.Cluster(nil, p); err == nil {
			t.Errorf("%s: empty dataset accepted", alg.Name())
		}
	}
}

func TestFastDPeakKParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := grid2D(rng, 2, 50, 150, 8)[:100] // two blobs, 50 points each
	p := Params{DCut: 15, RhoMin: 2, DeltaMin: 50, Workers: 2}
	for _, k := range []int{1, 8, 500} { // 500 > n exercises clamping
		res, err := FastDPeak{K: k}.Cluster(pts, p)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if res.NumClusters() != 2 {
			t.Errorf("K=%d: %d clusters, want 2", k, res.NumClusters())
		}
	}
}

func TestDPCGHighDimensional(t *testing.T) {
	// 8-d: the 3^8-cell neighborhoods are the known weakness; correctness
	// must still hold on a small input.
	rng := rand.New(rand.NewSource(6))
	pts, _ := gaussianMix(rng, 2, 60, 5, 8, 300, 15)
	p := Params{DCut: 60, RhoMin: 2, DeltaMin: 185, Workers: 2}
	ref, _ := Scan{}.Cluster(pts, p)
	res, err := DPCG{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if res.Rho[i] != ref.Rho[i] {
			t.Fatalf("8-d rho[%d] mismatch", i)
		}
		if res.Labels[i] != ref.Labels[i] {
			t.Fatalf("8-d label[%d] mismatch", i)
		}
	}
}
