package core

import (
	"math/rand"
	"testing"
)

// benchDataset is a 3-d hub mixture of 20k points, shared across the
// per-phase micro-benchmarks (Table 6's decomposition at package level).
func benchDataset(b *testing.B) ([][]float64, Params) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	n := 20000
	pts := make([][]float64, 0, n)
	for len(pts) < n {
		cx := float64(rng.Intn(10)) * 10000
		cy := float64(rng.Intn(10)) * 10000
		cz := float64(rng.Intn(10)) * 10000
		pts = append(pts, []float64{
			cx + rng.NormFloat64()*800,
			cy + rng.NormFloat64()*800,
			cz + rng.NormFloat64()*800,
		})
	}
	return pts, Params{DCut: 500, RhoMin: 5, DeltaMin: 2000, Workers: 0, Epsilon: 0.8, Seed: 1}
}

func benchRun(b *testing.B, alg Algorithm) {
	pts, p := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Cluster(pts, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreScan(b *testing.B)       { benchRun(b, Scan{}) }
func BenchmarkCoreRtreeScan(b *testing.B)  { benchRun(b, RtreeScan{}) }
func BenchmarkCoreLSHDDP(b *testing.B)     { benchRun(b, LSHDDP{}) }
func BenchmarkCoreCFSFDPA(b *testing.B)    { benchRun(b, CFSFDPA{}) }
func BenchmarkCoreExDPC(b *testing.B)      { benchRun(b, ExDPC{}) }
func BenchmarkCoreApproxDPC(b *testing.B)  { benchRun(b, ApproxDPC{}) }
func BenchmarkCoreSApproxDPC(b *testing.B) { benchRun(b, SApproxDPC{}) }
func BenchmarkCoreFastDPeak(b *testing.B)  { benchRun(b, FastDPeak{}) }
func BenchmarkCoreDPCG(b *testing.B)       { benchRun(b, DPCG{}) }
func BenchmarkCoreCFSFDPDE(b *testing.B)   { benchRun(b, CFSFDPDE{}) }

// BenchmarkApproxDPCSchedulers compares the three scheduling ablations.
func BenchmarkApproxDPCSchedulers(b *testing.B) {
	for _, tc := range []struct {
		name string
		m    SchedMode
	}{{"LPT", SchedLPT}, {"Dynamic", SchedDynamic}, {"Static", SchedStatic}} {
		b.Run(tc.name, func(b *testing.B) {
			benchRun(b, ApproxDPC{Sched: tc.m})
		})
	}
}

// BenchmarkSApproxEpsilon shows the Table 5 time side of the eps trade.
func BenchmarkSApproxEpsilon(b *testing.B) {
	for _, eps := range []float64{0.2, 0.5, 1.0} {
		b.Run(formatEps(eps), func(b *testing.B) {
			pts, p := benchDataset(b)
			p.Epsilon = eps
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (SApproxDPC{}).Cluster(pts, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func formatEps(e float64) string {
	switch e {
	case 0.2:
		return "eps0.2"
	case 0.5:
		return "eps0.5"
	default:
		return "eps1.0"
	}
}

// BenchmarkLabelPropagation isolates the shared finalize step.
func BenchmarkLabelPropagation(b *testing.B) {
	pts, p := benchDataset(b)
	res, err := ExDPC{}.Cluster(pts, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalize(res, p)
	}
}
