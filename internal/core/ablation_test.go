package core

import (
	"math/rand"
	"testing"
)

// TestApproxSubsetSInvariance: the subset count s is a performance knob;
// the exact dependent-point phase must return identical results for any
// s >= 2 (and for the Equation (2) default).
func TestApproxSubsetSInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := gaussianMix(rng, 4, 150, 40, 2, 700, 12)
	p := Params{DCut: 20, RhoMin: 3, DeltaMin: 70, Workers: 4}
	var ref *Result
	for _, s := range []int{0, 2, 3, 7, 50} {
		res, err := ApproxDPC{SubsetS: s}.Cluster(pts, p)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range pts {
			if res.Labels[i] != ref.Labels[i] {
				t.Fatalf("s=%d: labels differ at %d", s, i)
			}
			if !almostEq(res.Delta[i], ref.Delta[i]) {
				t.Fatalf("s=%d: delta differs at %d: %v vs %v", s, i, res.Delta[i], ref.Delta[i])
			}
		}
	}
}

// TestApproxSchedInvariance: scheduling strategies must not change any
// output, only timing.
func TestApproxSchedInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := gaussianMix(rng, 3, 150, 30, 3, 600, 12)
	p := Params{DCut: 35, RhoMin: 3, DeltaMin: 110, Workers: 4}
	var ref *Result
	for _, m := range []SchedMode{SchedLPT, SchedDynamic, SchedStatic} {
		res, err := ApproxDPC{Sched: m}.Cluster(pts, p)
		if err != nil {
			t.Fatalf("mode %d: %v", m, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range pts {
			if res.Labels[i] != ref.Labels[i] || res.Rho[i] != ref.Rho[i] {
				t.Fatalf("mode %d: output differs at %d", m, i)
			}
		}
	}
}

// TestLSHDDPFallbackScan: with a single wide-spread cluster and a tiny
// LSH width, buckets rarely contain a denser candidate, forcing the
// full-scan fallback; the result must still identify one cluster with the
// true density peak as its center.
func TestLSHDDPFallbackScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 600)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 40, rng.NormFloat64() * 40}
	}
	p := Params{DCut: 10, RhoMin: 1, DeltaMin: 60, Workers: 4, Seed: 5}
	ex, _ := ExDPC{}.Cluster(pts, p)
	res, err := LSHDDP{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 1 {
		t.Fatal("no clusters found")
	}
	// The global density peak must agree with the exact algorithm's
	// (densities are approximate, but the Gaussian core is unambiguous:
	// both peaks must lie near the origin).
	peakEx := ex.Centers[0]
	peakLSH := res.Centers[0]
	if dist2(pts[peakEx]) > 40*40 || dist2(pts[peakLSH]) > 40*40 {
		t.Errorf("peaks far from the Gaussian core: ex=%v lsh=%v", pts[peakEx], pts[peakLSH])
	}
}

func dist2(p []float64) float64 { return p[0]*p[0] + p[1]*p[1] }

// TestSApproxNonPickedNeverCenters: with eps > 1 the recorded dependent
// distance of non-picked points is capped at d_cut, so they can never be
// selected as cluster centers (DeltaMin > DCut by definition).
func TestSApproxNonPickedNeverCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := gaussianMix(rng, 3, 200, 20, 2, 500, 10)
	p := Params{DCut: 20, RhoMin: 2, DeltaMin: 65, Workers: 2, Epsilon: 1.8}
	res, err := SApproxDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 1 {
		t.Fatal("no clusters")
	}
	// Every center must be a picked point, i.e. its delta came from the
	// picked-point machinery: recorded deltas of non-picked points equal
	// min(eps,1)*DCut = DCut < DeltaMin.
	for _, c := range res.Centers {
		if res.Delta[c] < p.DeltaMin {
			t.Errorf("center %d has delta %v < DeltaMin", c, res.Delta[c])
		}
	}
}
