package core

// This file exports the shared post-density steps of the framework for
// index-backed construction: a parameter-flexible density index (see
// internal/densindex) re-derives Rho/Delta/Dep for a new parameter
// setting without recomputing distances, then needs exactly the same
// ordering, tie-breaking, and finalization the algorithms use so its
// labels are byte-identical to a fresh fit. Restore then freezes the
// re-cut Result into a servable Model.

// Finalize derives Centers and Labels from res.Rho/Delta/Dep under p
// (noise detection, center selection, label propagation along the
// dependency forest) — the exact step every algorithm runs after its
// density phase. res.Rho, res.Delta, and res.Dep must be fully
// populated.
func Finalize(res *Result, p Params) { finalize(res, p) }

// DensityOrder returns point indices sorted by descending rho — the
// order every "points of higher density" scan uses — sorting with up to
// `workers` goroutines. The comparator (rho descending, index
// ascending) is a strict total order, so the permutation is identical
// for every worker count.
func DensityOrder(rho []float64, workers int) []int32 { return densityOrder(rho, workers) }

// WorkerCount resolves p.Workers to an effective thread count (<= 0
// means all CPUs) — the same policy the algorithms apply internally.
func (p Params) WorkerCount() int { return p.workers() }

// Jitter returns the deterministic density tie-breaker added to point
// i's neighbor count: a SplitMix64-derived value in (0, 1) that makes
// all densities distinct while never reordering points with different
// counts. Index re-cuts must add the identical jitter to reproduce a
// fresh fit's density order bit-for-bit.
func Jitter(i int) float64 { return jitter(i) }
