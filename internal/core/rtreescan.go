package core

import (
	"time"

	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/rtree"
)

// RtreeScan is the "R-tree + Scan" baseline of §6: local densities come
// from circular range counts on an STR-packed R-tree, dependent points
// from the same quadratic prefix scan as Scan. The paper uses it to show
// that indexing alone fixes only the rho phase.
type RtreeScan struct {
	// Fanout overrides the R-tree branching factor; 0 means the default.
	Fanout int
}

// Name implements Algorithm.
func (RtreeScan) Name() string { return "R-tree + Scan" }

// Cluster implements Algorithm.
func (a RtreeScan) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a RtreeScan) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := rtree.Build(ds, a.Fanout)
	res.Timing.Build = time.Since(start)

	start = time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		res.Rho[i] = float64(tree.RangeCount(ds.At(i), p.DCut)) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	res.Delta, res.Dep = scanDelta(ds, res.Rho, workers)
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
