package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Assigner classifies points that were not part of the clustered dataset:
// a new point inherits the cluster of its nearest neighbor among the
// clustered points, or becomes noise when that neighbor is farther than
// d_cut (the natural out-of-sample extension of the dependency rule —
// in-cluster points are within d_cut of their dependency chain).
//
// Build one with NewAssigner after clustering; Assign is safe for
// concurrent use.
type Assigner struct {
	tree   *kdtree.Tree
	labels []int32
	dcut   float64
	dim    int
}

// NewAssigner indexes a clustering for out-of-sample assignment. pts and
// res must be the dataset and result of one Cluster call; dcut should be
// the d_cut used there. It copies the rows into a flat dataset; callers
// already holding one should use NewAssignerDataset.
func NewAssigner(pts [][]float64, res *Result, dcut float64) (*Assigner, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	ds, err := geom.FromRows(pts)
	if err != nil {
		return nil, err
	}
	return NewAssignerDataset(ds, res, dcut)
}

// NewAssignerDataset indexes a flat dataset for out-of-sample assignment
// without copying the points.
func NewAssignerDataset(ds *geom.Dataset, res *Result, dcut float64) (*Assigner, error) {
	if ds.N == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if len(res.Labels) != ds.N {
		return nil, fmt.Errorf("core: result has %d labels for %d points", len(res.Labels), ds.N)
	}
	if dcut <= 0 {
		return nil, fmt.Errorf("core: non-positive dcut")
	}
	return &Assigner{
		tree:   kdtree.BuildAll(ds),
		labels: res.Labels,
		dcut:   dcut,
		dim:    ds.Dim,
	}, nil
}

// Assign returns the cluster label for a new point, or NoCluster when the
// nearest clustered point is farther than d_cut or is itself noise.
func (a *Assigner) Assign(p []float64) (int32, error) {
	if len(p) != a.dim {
		return NoCluster, fmt.Errorf("core: point has dimension %d, want %d", len(p), a.dim)
	}
	id, sq := a.tree.NN(p)
	if id < 0 || math.Sqrt(sq) > a.dcut {
		return NoCluster, nil
	}
	return a.labels[id], nil
}

// AssignAll labels a batch of new points.
func (a *Assigner) AssignAll(pts [][]float64) ([]int32, error) {
	out := make([]int32, len(pts))
	for i, p := range pts {
		l, err := a.Assign(p)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = l
	}
	return out, nil
}

// SuggestCenters ranks points by gamma = rho * delta (the standard
// product heuristic on the decision graph) and returns the indices of the
// top k candidates in descending gamma order. Points below rhoMin are
// skipped; infinite deltas rank first. This complements SuggestDeltaMin
// when the decision graph has no single clean delta gap.
func SuggestCenters(res *Result, k int, rhoMin float64) []int32 {
	type cand struct {
		id    int32
		gamma float64
		inf   bool
	}
	var cands []cand
	for i := range res.Rho {
		if res.Rho[i] < rhoMin {
			continue
		}
		c := cand{id: int32(i)}
		if math.IsInf(res.Delta[i], 1) {
			c.inf = true
		} else {
			c.gamma = res.Rho[i] * res.Delta[i]
		}
		cands = append(cands, c)
	}
	// Selection sort of the top k keeps this O(n*k) without extra deps;
	// k is tiny in practice.
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int32, 0, k)
	used := make(map[int]bool, k)
	for len(out) < k {
		best := -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			b := cands[best]
			if (c.inf && !b.inf) || (c.inf == b.inf && c.gamma > b.gamma) {
				best = i
			}
		}
		used[best] = true
		out = append(out, cands[best].id)
	}
	return out
}
