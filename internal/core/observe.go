package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/partition"
)

// centerDist returns the distance from p to the center point of cluster
// label l, or NaN when l is NoCluster — the quantity the drift tracker
// observes. One O(dim) kernel call on top of the assignment itself.
func (m *Model) centerDist(p []float64, l int32) float64 {
	if l == NoCluster {
		return math.NaN()
	}
	return math.Sqrt(geom.SqDistToIdx(m.ds, p, m.res.Centers[l]))
}

// CenterDist returns the distance from p to the center point of the
// cluster labeled l, or NaN when l is NoCluster — the quantity a drift
// tracker observes. One O(dim) kernel call; p must have the model's
// dimensionality and l must be a label this model produced.
func (m *Model) CenterDist(p []float64, l int32) float64 {
	return m.centerDist(p, l)
}

// AssignAllObserve is AssignAll plus drift observation: when dists is
// non-nil it must have len(pts) entries, and each is filled with the
// point's distance to its assigned cluster's center (NaN for noise).
// With dists nil it is exactly AssignAll. Safe for concurrent use.
func (m *Model) AssignAllObserve(pts [][]float64, workers int, dists []float64) ([]int32, error) {
	if dists == nil {
		return m.AssignAll(pts, workers)
	}
	if len(dists) != len(pts) {
		return nil, fmt.Errorf("core: %d distance slots for %d points", len(dists), len(pts))
	}
	if len(pts) == 0 {
		return []int32{}, nil
	}
	for i, p := range pts {
		if len(p) != m.ds.Dim {
			return nil, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), m.ds.Dim)
		}
	}
	out := make([]int32, len(pts))
	partition.DynamicChunked(len(pts), Params{Workers: workers}.workers(), 32, func(i int) {
		l, _ := m.assigner.Assign(pts[i]) // dims pre-checked above
		out[i] = l
		dists[i] = m.centerDist(pts[i], l)
	})
	return out, nil
}

// ReferenceDists samples the training points' distance to their
// assigned cluster centers — the fit-time distribution a drift tracker
// scores serve-time assigns against. Sampling is strided so the cost is
// O(maxSample * dim) regardless of n (<= 0 samples every point); noise
// points contribute NaN entries, so the caller's reference captures the
// training halo rate too.
func (m *Model) ReferenceDists(maxSample int) []float64 {
	n := m.ds.N
	stride := 1
	if maxSample > 0 && n > maxSample {
		stride = (n + maxSample - 1) / maxSample
	}
	dists := make([]float64, 0, (n+stride-1)/stride)
	for i := 0; i < n; i += stride {
		l := m.res.Labels[i]
		if l == NoCluster {
			dists = append(dists, math.NaN())
			continue
		}
		dists = append(dists, math.Sqrt(geom.SqDistIdx(m.ds, int32(i), m.res.Centers[l])))
	}
	return dists
}
