package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// equivAlgs is the grid the kernel- and scheduling-equivalence gates run
// over: every evaluated algorithm plus the dropped competitors, exactly
// the set TestFlatRowsEquivalence covers.
func equivAlgs() []Algorithm {
	return []Algorithm{
		Scan{}, RtreeScan{}, LSHDDP{}, CFSFDPA{},
		ExDPC{}, ApproxDPC{}, SApproxDPC{},
		FastDPeak{}, DPCG{}, CFSFDPDE{},
	}
}

// TestSIMDScalarEquivalence is the dispatch contract of the kernel
// layer: with the assembly kernels on and off, every algorithm must
// produce byte-identical results — the AVX2 path mirrors the canonical
// accumulation order instruction for instruction, so SetSIMD changes
// speed, never bits. Dimensions straddle the 4-lane dispatch floor
// (d=2 stays scalar, d=5 exercises chunk + tail). On builds without the
// assembly (noasm, non-amd64) both legs run the fallback and the test
// degenerates to a determinism check, which is still worth the run.
func TestSIMDScalarEquivalence(t *testing.T) {
	if !geom.SIMDEnabled() {
		t.Log("assembly kernels unavailable; comparing fallback against itself")
	}
	for _, d := range []int{2, 4, 5} {
		rng := rand.New(rand.NewSource(int64(300 + d)))
		rows := equivBlobs(rng, 700, d)
		ds := geom.MustFromRows(rows)
		p := Params{DCut: 12, RhoMin: 3, DeltaMin: 40, Workers: 4, Epsilon: 0.8, Seed: 1}
		for _, alg := range equivAlgs() {
			prev := geom.SetSIMD(false)
			scalar, err := alg.ClusterDataset(ds, p)
			geom.SetSIMD(true)
			if err != nil {
				geom.SetSIMD(prev)
				t.Fatalf("%s scalar (d=%d): %v", alg.Name(), d, err)
			}
			simd, err := alg.ClusterDataset(ds, p)
			geom.SetSIMD(prev)
			if err != nil {
				t.Fatalf("%s simd (d=%d): %v", alg.Name(), d, err)
			}
			compareResults(t, alg.Name()+" simd-vs-scalar", d, scalar, simd)
		}
	}
}

// TestParallelSerialEquivalence gates the parallel fit phases: one
// worker against several must be byte-identical for every algorithm —
// the parallel density and dependency passes use deterministic
// partitioning and tie-breaking, so the schedule never leaks into the
// result. Worker counts that do not divide n exercise the remainder
// blocks.
func TestParallelSerialEquivalence(t *testing.T) {
	for _, d := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(400 + d)))
		rows := equivBlobs(rng, 901, d)
		ds := geom.MustFromRows(rows)
		base := Params{DCut: 12, RhoMin: 3, DeltaMin: 40, Epsilon: 0.8, Seed: 1}
		for _, alg := range equivAlgs() {
			serialP := base
			serialP.Workers = 1
			serial, err := alg.ClusterDataset(ds, serialP)
			if err != nil {
				t.Fatalf("%s serial (d=%d): %v", alg.Name(), d, err)
			}
			for _, workers := range []int{3, 7} {
				parP := base
				parP.Workers = workers
				par, err := alg.ClusterDataset(ds, parP)
				if err != nil {
					t.Fatalf("%s workers=%d (d=%d): %v", alg.Name(), workers, d, err)
				}
				compareResults(t, alg.Name()+" parallel-vs-serial", d, serial, par)
			}
		}
	}
}

// TestFloat32Tolerance bounds what narrowing a dataset to float32 may
// change. The f32 kernels widen each stored element back to float64
// exactly, so the only way labels can move is a pair whose true distance
// sits so close to d_cut that the storage rounding pushes it across —
// a dc-boundary tie. The test counts those crossing pairs directly; with
// none, results must be byte-identical, and with crossings the label
// disagreement must stay proportionate to them instead of cascading.
func TestFloat32Tolerance(t *testing.T) {
	for _, d := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(500 + d)))
		rows := equivBlobs(rng, 800, d)
		ds := geom.MustFromRows(rows)
		ds32 := ds.ToFloat32()
		p := Params{DCut: 12, RhoMin: 3, DeltaMin: 40, Workers: 4, Seed: 1}

		// Count pairs whose in-range verdict flips under f32 storage.
		dc2 := p.DCut * p.DCut
		crossings := 0
		for i := int32(0); i < int32(ds.N); i++ {
			for j := i + 1; j < int32(ds.N); j++ {
				in64 := geom.SqDistIdx(ds, i, j) <= dc2
				in32 := geom.SqDistIdx(ds32, i, j) <= dc2
				if in64 != in32 {
					crossings++
				}
			}
		}

		for _, alg := range []Algorithm{Scan{}, ExDPC{}} {
			r64, err := alg.ClusterDataset(ds, p)
			if err != nil {
				t.Fatalf("%s f64 (d=%d): %v", alg.Name(), d, err)
			}
			r32, err := alg.ClusterDataset(ds32, p)
			if err != nil {
				t.Fatalf("%s f32 (d=%d): %v", alg.Name(), d, err)
			}
			disagree := 0
			for i := range r64.Labels {
				if r64.Labels[i] != r32.Labels[i] {
					disagree++
				}
			}
			if crossings == 0 && disagree != 0 {
				t.Fatalf("%s (d=%d): %d label disagreements with zero dc-boundary crossings",
					alg.Name(), d, disagree)
			}
			// A crossing flips at most one point's density membership; allow
			// each to carry its dependency subtree but never a blowup.
			if limit := 25 * crossings; disagree > limit {
				t.Fatalf("%s (d=%d): %d label disagreements exceed the %d budget of %d boundary crossings",
					alg.Name(), d, disagree, limit, crossings)
			}
		}
	}
}
