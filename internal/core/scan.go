package core

import (
	"time"

	"repro/internal/geom"
	"repro/internal/partition"
)

// Scan is the straightforward O(n^2) algorithm of §2.1: a linear scan per
// point for local density and the sorted prefix scan for dependent points.
// Both phases are embarrassingly parallel over points and use dynamic
// scheduling.
type Scan struct{}

// Name implements Algorithm.
func (Scan) Name() string { return "Scan" }

// Cluster implements Algorithm.
func (a Scan) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (Scan) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()
	sq := p.DCut * p.DCut

	start := time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		count := 0
		for j := 0; j < n; j++ {
			if s, ok := geom.SqDistIdxPartial(ds, int32(i), int32(j), sq); ok && s < sq {
				count++
			}
		}
		res.Rho[i] = float64(count) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	res.Delta, res.Dep = scanDelta(ds, res.Rho, workers)
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
