package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestFlatRowsEquivalence is the behavior-preservation contract of the
// flat-dataset refactor: for each of the seven evaluated algorithms (and
// the three dropped competitors), the [][]float64 entry point (one
// row-pack copy) and the flat ClusterDataset entry point must produce
// byte-identical Result fields — Rho, Delta, Dep, Centers, and Labels —
// because they traverse the same coordinates in the same order.
func TestFlatRowsEquivalence(t *testing.T) {
	algs := []Algorithm{
		Scan{}, RtreeScan{}, LSHDDP{}, CFSFDPA{},
		ExDPC{}, ApproxDPC{}, SApproxDPC{},
		FastDPeak{}, DPCG{}, CFSFDPDE{},
	}
	for _, d := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(100 + d)))
		rows := equivBlobs(rng, 900, d)
		ds := geom.MustFromRows(rows)
		p := Params{DCut: 12, RhoMin: 3, DeltaMin: 40, Workers: 4, Epsilon: 0.8, Seed: 1}
		for _, alg := range algs {
			fromRows, err := alg.Cluster(rows, p)
			if err != nil {
				t.Fatalf("%s rows (d=%d): %v", alg.Name(), d, err)
			}
			fromFlat, err := alg.ClusterDataset(ds, p)
			if err != nil {
				t.Fatalf("%s flat (d=%d): %v", alg.Name(), d, err)
			}
			compareResults(t, alg.Name(), d, fromRows, fromFlat)
		}
	}
}

func compareResults(t *testing.T, name string, d int, a, b *Result) {
	t.Helper()
	if len(a.Rho) != len(b.Rho) {
		t.Fatalf("%s (d=%d): result sizes differ", name, d)
	}
	for i := range a.Rho {
		if a.Rho[i] != b.Rho[i] {
			t.Fatalf("%s (d=%d): Rho[%d] %v != %v", name, d, i, a.Rho[i], b.Rho[i])
		}
		// Compare Delta bit-exactly, treating equal infinities as equal.
		if a.Delta[i] != b.Delta[i] && !(math.IsInf(a.Delta[i], 1) && math.IsInf(b.Delta[i], 1)) {
			t.Fatalf("%s (d=%d): Delta[%d] %v != %v", name, d, i, a.Delta[i], b.Delta[i])
		}
		if a.Dep[i] != b.Dep[i] {
			t.Fatalf("%s (d=%d): Dep[%d] %d != %d", name, d, i, a.Dep[i], b.Dep[i])
		}
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s (d=%d): Labels[%d] %d != %d", name, d, i, a.Labels[i], b.Labels[i])
		}
	}
	if len(a.Centers) != len(b.Centers) {
		t.Fatalf("%s (d=%d): %d vs %d centers", name, d, len(a.Centers), len(b.Centers))
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			t.Fatalf("%s (d=%d): Centers[%d] %d != %d", name, d, i, a.Centers[i], b.Centers[i])
		}
	}
}

// equivBlobs generates a few well-separated Gaussian blobs plus stray
// noise — enough structure that every algorithm exercises its center,
// label, and noise paths.
func equivBlobs(rng *rand.Rand, n, d int) [][]float64 {
	centers := make([][]float64, 5)
	for c := range centers {
		ctr := make([]float64, d)
		for j := range ctr {
			ctr[j] = float64(c+1) * 150
		}
		ctr[0] = float64((c%3)+1) * 180
		centers[c] = ctr
	}
	rows := make([][]float64, 0, n)
	for len(rows) < n {
		p := make([]float64, d)
		if rng.Float64() < 0.03 {
			for j := range p {
				p[j] = rng.Float64() * 800
			}
		} else {
			c := centers[rng.Intn(len(centers))]
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*5
			}
		}
		rows = append(rows, p)
	}
	return rows
}
