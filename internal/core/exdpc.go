package core

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// ExDPC is the paper's exact algorithm (§3).
//
// Local densities are one kd-tree range count per point —
// O(n(n^{1-1/d} + rho_avg)) total — parallelized with dynamic
// self-scheduling because per-point cost tracks the unknown local density.
//
// Dependent points use the incremental-kd-tree idea: destroy the tree,
// sort points by descending density, and for each point run a nearest-
// neighbor query against the tree holding exactly the higher-density
// points, then insert it. This phase is inherently sequential (each query
// depends on all previous inserts), which is the scalability limitation
// Figure 9 exposes and Approx-DPC removes.
type ExDPC struct{}

// Name implements Algorithm.
func (ExDPC) Name() string { return "Ex-DPC" }

// Cluster implements Algorithm.
func (a ExDPC) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (ExDPC) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := kdtree.BuildAll(ds)
	res.Timing.Build = time.Since(start)

	// Local density: one range count per point, dynamically scheduled
	// ("#pragma omp parallel for schedule(dynamic)" in the paper).
	start = time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		res.Rho[i] = float64(tree.RangeCount(ds.At(i), p.DCut)) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	// Dependent points: destroy K, then find each point's nearest
	// higher-density point in descending density order. The serial
	// query-then-insert loop is the scalability limitation Figure 9
	// exposes; here it is parallelized without giving up exactness by
	// processing the density order in fixed-size blocks. Every point of
	// a block queries the frozen tree (holding exactly the points of all
	// earlier blocks) concurrently, then refines against the denser
	// members of its own block — precisely the points the frozen tree is
	// missing — with an early-exit kernel scan over at most depBlock-1
	// candidates; finally the whole block is inserted. Each point still
	// finds its true dependent point, and because the block size is a
	// constant and point k's answer depends only on the frozen tree and
	// block[:k], the labels are byte-identical for every worker count
	// (Workers=1 runs the same code). On exact-distance ties the winner
	// can differ from the old one-insert-per-query loop's choice — the
	// same degenerate duplicate-distance class the density index
	// documents.
	start = time.Now()
	order := densityOrder(res.Rho, workers)
	tree = kdtree.New(ds) // "destroy K"
	res.Delta[order[0]] = math.Inf(1)
	res.Dep[order[0]] = NoDependent
	tree.Insert(order[0])
	const depBlock = 256
	for lo := 1; lo < n; lo += depBlock {
		hi := min(lo+depBlock, n)
		block := order[lo:hi]
		partition.DynamicChunked(len(block), workers, 4, func(k int) {
			i := block[k]
			best, bestSq := tree.NN(ds.At(int(i)))
			for _, j := range block[:k] {
				if s, ok := geom.SqDistIdxPartial(ds, i, j, bestSq); ok && s < bestSq {
					bestSq, best = s, j
				}
			}
			res.Dep[i] = best
			res.Delta[i] = math.Sqrt(bestSq)
		})
		for _, i := range block {
			tree.Insert(i)
		}
	}
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
