package core

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// ExDPC is the paper's exact algorithm (§3).
//
// Local densities are one kd-tree range count per point —
// O(n(n^{1-1/d} + rho_avg)) total — parallelized with dynamic
// self-scheduling because per-point cost tracks the unknown local density.
//
// Dependent points use the incremental-kd-tree idea: destroy the tree,
// sort points by descending density, and for each point run a nearest-
// neighbor query against the tree holding exactly the higher-density
// points, then insert it. This phase is inherently sequential (each query
// depends on all previous inserts), which is the scalability limitation
// Figure 9 exposes and Approx-DPC removes.
type ExDPC struct{}

// Name implements Algorithm.
func (ExDPC) Name() string { return "Ex-DPC" }

// Cluster implements Algorithm.
func (a ExDPC) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (ExDPC) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := kdtree.BuildAll(ds)
	res.Timing.Build = time.Since(start)

	// Local density: one range count per point, dynamically scheduled
	// ("#pragma omp parallel for schedule(dynamic)" in the paper).
	start = time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		res.Rho[i] = float64(tree.RangeCount(ds.At(i), p.DCut)) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	// Dependent points: destroy K, then NN-query-and-insert in descending
	// density order. The tree always contains exactly the points denser
	// than the current one, so the NN result is the true dependent point.
	start = time.Now()
	order := densityOrder(res.Rho)
	tree = kdtree.New(ds) // "destroy K"
	res.Delta[order[0]] = math.Inf(1)
	res.Dep[order[0]] = NoDependent
	tree.Insert(order[0])
	for r := 1; r < n; r++ {
		i := order[r]
		id, sq := tree.NN(ds.At(int(i)))
		res.Dep[i] = id
		res.Delta[i] = math.Sqrt(sq)
		tree.Insert(i)
	}
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
