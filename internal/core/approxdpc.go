package core

import (
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// ApproxDPC is the paper's parameter-free approximation algorithm (§4).
//
// Local densities stay exact but are computed with one *joint* range
// search per grid cell (side d_cut/sqrt(d)): the ball
// B(cp, d_cut + max_{p in c} dist(cp, p)) around the cell center covers
// the d_cut-ball of every member, so one kd-tree traversal serves the
// whole cell and the per-member counts come from scanning that one result.
//
// Dependent points are approximated in O(1) for any point that has a
// denser point within d_cut (in-cell rule via p*(c); neighbor-cell rule
// via N(c) and min-density summaries); the remainder P' gets exact
// dependent points from s density-sorted subsets, each indexed by its own
// kd-tree, with the case (i)/(ii)/(iii) subset pruning of Figure 5.
// Theorem 4: the cluster centers equal Ex-DPC's for the same parameters.
//
// Both phases are parallelized with the cost-based LPT greedy assignment
// of §4.5 (costs |P(c)|, then |P(c)|*|R(c)|, then cost_dep).
//
// The zero value runs the paper's configuration. Sched and SubsetS exist
// for the ablation benchmarks only: Sched swaps the cost-based LPT
// assignment for plain dynamic or static scheduling, and SubsetS
// overrides the Equation (2) choice of s in the exact dependent-point
// phase.
type ApproxDPC struct {
	// Sched selects the parallel scheduling strategy (default SchedLPT).
	Sched SchedMode
	// SubsetS overrides s for the exact dependent-point phase; 0 means
	// Equation (2).
	SubsetS int
}

// SchedMode selects how parallel tasks are distributed to workers.
type SchedMode int

// Scheduling strategies for the ablation study.
const (
	// SchedLPT is the paper's cost-based 3/2-approximation greedy.
	SchedLPT SchedMode = iota
	// SchedDynamic ignores cost estimates and self-schedules tasks.
	SchedDynamic
	// SchedStatic assigns equal-count contiguous blocks (no balancing).
	SchedStatic
)

// schedule runs fn over len(costs) tasks under the selected strategy.
func (m SchedMode) schedule(costs []float64, workers int, fn func(i int)) {
	switch m {
	case SchedDynamic:
		partition.Dynamic(len(costs), workers, fn)
	case SchedStatic:
		staticPartition(len(costs), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		})
	default:
		partition.RunLPT(costs, workers, fn)
	}
}

// Name implements Algorithm.
func (ApproxDPC) Name() string { return "Approx-DPC" }

// Cluster implements Algorithm.
func (a ApproxDPC) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a ApproxDPC) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	d := ds.Dim
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := kdtree.BuildAll(ds)
	g := grid.Build(ds, grid.SideForDCut(p.DCut, d))
	res.Timing.Build = time.Since(start)

	start = time.Now()
	rangeResults := jointRangeSearch(ds, tree, g, p, workers, a.Sched)
	computeDensities(ds, g, rangeResults, res.Rho, p, workers, a.Sched)
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	approxThenExactDependents(ds, g, res, p, workers, d, a.Sched, a.SubsetS)
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}

// jointRangeSearch runs one expanded-ball range search per cell
// (phase 1 of §4.5; cost estimate |P(c)|, LPT-partitioned).
func jointRangeSearch(ds *geom.Dataset, tree *kdtree.Tree, g *grid.Grid, p Params, workers int, sched SchedMode) [][]int32 {
	nc := g.NumCells()
	results := make([][]int32, nc)
	costs := make([]float64, nc)
	for c := range costs {
		costs[c] = float64(len(g.Cells[c].Points))
	}
	sched.schedule(costs, workers, func(c int) {
		cell := &g.Cells[c]
		cp := g.Center(int32(c))
		var maxSq float64
		for _, m := range cell.Points {
			if sq := geom.SqDistToIdx(ds, cp, m); sq > maxSq {
				maxSq = sq
			}
		}
		radius := p.DCut + math.Sqrt(maxSq)
		ids := make([]int32, 0, 2*len(cell.Points))
		tree.RangeSearch(cp, radius, func(id int32, _ float64) {
			ids = append(ids, id)
		})
		results[c] = ids
	})
	return results
}

// computeDensities scans each cell's joint result to obtain exact local
// densities for all members and fills the cell summaries p*(c), min rho,
// and N(c) (phase 2 of §4.5; cost estimate |P(c)|*|R(c)|).
func computeDensities(ds *geom.Dataset, g *grid.Grid, rangeResults [][]int32, rho []float64, p Params, workers int, sched SchedMode) {
	sq := p.DCut * p.DCut
	nc := g.NumCells()
	costs := make([]float64, nc)
	for c := range costs {
		costs[c] = float64(len(g.Cells[c].Points)) * float64(len(rangeResults[c]))
	}
	sched.schedule(costs, workers, func(c int) {
		cell := &g.Cells[c]
		r := rangeResults[c]
		best := int32(-1)
		bestRho := math.Inf(-1)
		minRho := math.Inf(1)
		for _, m := range cell.Points {
			pm := ds.At(int(m))
			count := 0
			for _, x := range r {
				if v, ok := geom.SqDistToIdxPartial(ds, pm, x, sq); ok && v < sq {
					count++
				}
			}
			v := float64(count) + jitter(int(m))
			rho[m] = v
			if v > bestRho {
				bestRho, best = v, m
			}
			if v < minRho {
				minRho = v
			}
		}
		cell.Best = best
		cell.MinRho = minRho
		// N(c): cells of points outside c within d_cut of p*(c).
		pb := ds.At(int(best))
		seen := make(map[int32]struct{})
		for _, x := range r {
			xc := g.PointCell[x]
			if xc == int32(c) {
				continue
			}
			if _, ok := seen[xc]; ok {
				continue
			}
			if geom.SqDistToIdx(ds, pb, x) < sq {
				seen[xc] = struct{}{}
				cell.Neighbors = append(cell.Neighbors, xc)
			}
		}
		sort.Slice(cell.Neighbors, func(a, b int) bool { return cell.Neighbors[a] < cell.Neighbors[b] })
	})
}

// approxThenExactDependents applies the two O(1) approximation rules of
// §4.3 and resolves the remaining set P' exactly with s density-sorted
// kd-tree subsets.
func approxThenExactDependents(ds *geom.Dataset, g *grid.Grid, res *Result, p Params, workers, d int, sched SchedMode, subsetS int) {
	n := ds.N
	unresolvedMark := int32(-2)
	// Rule pass, parallel over cells (each point is touched by exactly its
	// own cell's task).
	partition.Dynamic(g.NumCells(), workers, func(c int) {
		cell := &g.Cells[c]
		for _, i := range cell.Points {
			if i != cell.Best {
				// In-cell rule: p*(c) is denser and within the cell
				// diagonal = d_cut.
				res.Dep[i] = cell.Best
				res.Delta[i] = p.DCut
				continue
			}
			// Neighbor-cell rule for p*(c).
			res.Dep[i] = unresolvedMark
			for _, nb := range cell.Neighbors {
				nc := &g.Cells[nb]
				if nc.MinRho > res.Rho[i] {
					res.Dep[i] = nc.Best
					res.Delta[i] = p.DCut
					break
				}
			}
		}
	})

	var unresolved []int32
	for i := int32(0); i < int32(n); i++ {
		if res.Dep[i] == unresolvedMark {
			unresolved = append(unresolved, i)
		}
	}
	exactDependentsOpt(ds, res.Rho, unresolved, res.Delta, res.Dep, workers, d, sched, subsetS)
}

// exactDependents computes exact dependent points for the given subset of
// points using the s density-sorted kd-tree partitions of §4.3. It is
// shared with S-Approx-DPC's fallback path (there the universe is the
// picked set). universe entries are the points eligible to *be* dependent
// points; here that is all of P, identified implicitly by len(rho).
func exactDependents(ds *geom.Dataset, rho []float64, queries []int32, delta []float64, dep []int32, workers, d int) {
	exactDependentsOpt(ds, rho, queries, delta, dep, workers, d, SchedLPT, 0)
}

// exactDependentsOpt is exactDependents with the ablation knobs exposed.
func exactDependentsOpt(ds *geom.Dataset, rho []float64, queries []int32, delta []float64, dep []int32, workers, d int, sched SchedMode, subsetS int) {
	n := len(rho)
	if len(queries) == 0 {
		return
	}
	// Ascending-density order and rank of every point.
	asc := make([]int32, n)
	for i := range asc {
		asc[i] = int32(i)
	}
	sort.Slice(asc, func(a, b int) bool { return rho[asc[a]] < rho[asc[b]] })
	rank := make([]int32, n)
	for r, i := range asc {
		rank[i] = int32(r)
	}

	// Equation (2): n/s = O((s-1)(n/s)^{1-1/d})  =>  s ~ n^{1/(d+1)}.
	s := subsetS
	if s <= 0 {
		s = int(math.Round(math.Pow(float64(n), 1/float64(d+1))))
	}
	if s < 2 {
		s = 2
	}
	if s > n {
		s = n
	}
	chunk := (n + s - 1) / s
	subsets := make([][]int32, 0, s)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		subsets = append(subsets, asc[lo:hi])
	}
	trees := make([]*kdtree.Tree, len(subsets))
	partition.Dynamic(len(subsets), workers, func(k int) {
		ids := make([]int32, len(subsets[k]))
		copy(ids, subsets[k])
		trees[k] = kdtree.Build(ds, ids)
	})

	// cost_dep of §4.5: own-subset scan when case (ii) applies, plus one NN
	// search per higher subset.
	nOverS := float64(chunk)
	nnCost := math.Pow(nOverS, 1-1/float64(d))
	costs := make([]float64, len(queries))
	for qi, i := range queries {
		k := int(rank[i]) / chunk
		m := len(subsets) - k // subsets that may hold the dependent point
		costs[qi] = nOverS + float64(m-1)*nnCost
	}

	sched.schedule(costs, workers, func(qi int) {
		i := queries[qi]
		pi := ds.At(int(i))
		k := int(rank[i]) / chunk
		bestSq := math.Inf(1)
		best := NoDependent
		// Case (ii): the subset containing p_i mixes densities; scan it.
		for _, j := range subsets[k] {
			if rho[j] <= rho[i] {
				continue
			}
			if sq, ok := geom.SqDistToIdxPartial(ds, pi, j, bestSq); ok && sq < bestSq {
				bestSq, best = sq, j
			}
		}
		// Case (i): all higher subsets consist purely of denser points.
		// The running best distance bounds each successive tree search, so
		// once any nearby candidate is found the remaining trees are
		// pruned almost entirely.
		for t := k + 1; t < len(subsets); t++ {
			if id, sq := trees[t].NNWithBound(pi, bestSq); id >= 0 {
				bestSq, best = sq, id
			}
		}
		dep[i] = best
		if best == NoDependent {
			delta[i] = math.Inf(1) // the global density peak
		} else {
			delta[i] = math.Sqrt(bestSq)
		}
	})
}
