package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

func TestRegisteredCoversAllTen(t *testing.T) {
	algs := Registered()
	if len(algs) != 10 {
		t.Fatalf("Registered() has %d algorithms, want 10", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if seen[a.Name()] {
			t.Errorf("duplicate algorithm name %q", a.Name())
		}
		seen[a.Name()] = true
		got, ok := AlgorithmByName(a.Name())
		if !ok || got.Name() != a.Name() {
			t.Errorf("AlgorithmByName(%q) failed", a.Name())
		}
	}
	if _, ok := AlgorithmByName("nope"); ok {
		t.Error("AlgorithmByName accepted unknown name")
	}
}

// TestModelAssignReproducesTrainingLabels is the fit-once/assign-many
// equivalence guarantee: for every registered algorithm, assigning the
// training points back through the fitted model's kd-tree reproduces the
// fitted Labels exactly (each training point's nearest neighbor is
// itself, at distance zero).
func TestModelAssignReproducesTrainingLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, _ := gaussianMix(rng, 5, 120, 30, 2, 200, 3)
	ds := geom.MustFromRows(rows)
	p := defaultParams()
	for _, alg := range Registered() {
		m, err := Fit(alg, ds, p)
		if err != nil {
			t.Fatalf("%s: fit: %v", alg.Name(), err)
		}
		if m.Algorithm() != alg.Name() || m.N() != ds.N || m.Dim() != ds.Dim {
			t.Errorf("%s: model metadata wrong: %+v", alg.Name(), m.Stats())
		}
		labels, err := m.AssignDataset(ds, 3)
		if err != nil {
			t.Fatalf("%s: assign: %v", alg.Name(), err)
		}
		want := m.Result().Labels
		for i := range labels {
			if labels[i] != want[i] {
				t.Fatalf("%s: Assign(training point %d) = %d, fitted label %d",
					alg.Name(), i, labels[i], want[i])
			}
		}
		// The row-slice batch path must agree with the dataset path.
		batch, err := m.AssignAll(rows[:50], 2)
		if err != nil {
			t.Fatalf("%s: AssignAll: %v", alg.Name(), err)
		}
		for i := range batch {
			if batch[i] != want[i] {
				t.Fatalf("%s: AssignAll[%d] = %d, want %d", alg.Name(), i, batch[i], want[i])
			}
		}
	}
}

func TestModelAssignDimensionChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, _ := gaussianMix(rng, 3, 80, 10, 2, 200, 3)
	m, err := Fit(ApproxDPC{}, geom.MustFromRows(rows), defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Assign([]float64{1, 2, 3}); err == nil {
		t.Error("Assign accepted wrong dimension")
	}
	if _, err := m.AssignAll([][]float64{{1, 2}, {1, 2, 3}}, 2); err == nil {
		t.Error("AssignAll accepted mixed dimensions")
	}
	if _, err := m.AssignDataset(geom.MustFromRows([][]float64{{1, 2, 3}}), 2); err == nil {
		t.Error("AssignDataset accepted wrong dimension")
	}
	if out, err := m.AssignAll(nil, 2); err != nil || out == nil || len(out) != 0 {
		// Non-nil so the serving layer marshals [] rather than null.
		t.Errorf("empty batch: got %v, %v", out, err)
	}
}

func TestModelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows, _ := gaussianMix(rng, 4, 100, 40, 2, 200, 3)
	m, err := Fit(ExDPC{}, geom.MustFromRows(rows), defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Algorithm != "Ex-DPC" || s.N != len(rows) || s.Dim != 2 {
		t.Errorf("stats metadata wrong: %+v", s)
	}
	if s.Clusters != m.NumClusters() || s.Clusters == 0 {
		t.Errorf("stats clusters = %d, model says %d", s.Clusters, m.NumClusters())
	}
	if s.Noise == 0 {
		t.Error("expected some noise points in the mixture fixture")
	}
	if s.FitSecs <= 0 {
		t.Error("fit time not recorded")
	}
}

func TestCanonicalParams(t *testing.T) {
	p := Params{DCut: 8, RhoMin: 5, DeltaMin: 30, Workers: 4, Epsilon: 0.4, Seed: 9}
	// Deterministic algorithm: Seed and Epsilon are not identity.
	c := CanonicalParams("Ex-DPC", p)
	if c.Seed != 0 || c.Epsilon != 0 {
		t.Errorf("Ex-DPC canonical = %+v, want Seed/Epsilon zeroed", c)
	}
	if c.DCut != p.DCut || c.RhoMin != p.RhoMin || c.DeltaMin != p.DeltaMin || c.Workers != p.Workers {
		t.Errorf("Ex-DPC canonical clobbered real params: %+v", c)
	}
	// Randomized substrate: Seed survives.
	for _, name := range []string{"LSH-DDP", "CFSFDP-A", "CFSFDP-DE"} {
		if c := CanonicalParams(name, p); c.Seed != 9 {
			t.Errorf("%s canonical dropped Seed", name)
		}
	}
	// Epsilon matters only to S-Approx-DPC, where <= 0 means 1.
	if c := CanonicalParams("S-Approx-DPC", p); c.Epsilon != 0.4 {
		t.Errorf("S-Approx-DPC canonical dropped Epsilon: %+v", c)
	}
	pz := p
	pz.Epsilon = 0
	if c := CanonicalParams("S-Approx-DPC", pz); c.Epsilon != 1 {
		t.Errorf("S-Approx-DPC canonical of defaulted Epsilon = %v, want 1", c.Epsilon)
	}
	// Canonical params must fit to the same result as the originals.
	rng := rand.New(rand.NewSource(12))
	rows, _ := gaussianMix(rng, 3, 80, 10, 2, 200, 3)
	ds := geom.MustFromRows(rows)
	for _, alg := range []Algorithm{ExDPC{}, ApproxDPC{}} {
		a, err := alg.ClusterDataset(ds, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alg.ClusterDataset(ds, CanonicalParams(alg.Name(), p))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("%s: canonical params changed label %d", alg.Name(), i)
			}
		}
	}
}

// TestModelConcurrentFitAssignRace is the -race satellite: every
// registered algorithm fits with Workers > 1 (exercising
// partition.Dynamic everywhere and the LPT cost-greedy path in
// Approx-DPC) while earlier models serve concurrent Assign traffic.
func TestModelConcurrentFitAssignRace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, _ := gaussianMix(rng, 4, 90, 20, 2, 200, 3)
	ds := geom.MustFromRows(rows)
	p := defaultParams() // Workers: 4 > 1

	queries := make([][]float64, 200)
	for i := range queries {
		queries[i] = []float64{rng.Float64() * 200, rng.Float64() * 200}
	}

	var wg sync.WaitGroup
	for _, alg := range Registered() {
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			m, err := Fit(alg, ds, p)
			if err != nil {
				t.Errorf("%s: fit: %v", alg.Name(), err)
				return
			}
			// Hammer the fitted model from several goroutines while the
			// other algorithms are still fitting on the shared dataset.
			var ag sync.WaitGroup
			for g := 0; g < 4; g++ {
				ag.Add(1)
				go func() {
					defer ag.Done()
					if _, err := m.AssignAll(queries, 2); err != nil {
						t.Errorf("%s: AssignAll: %v", alg.Name(), err)
					}
					for _, q := range queries[:32] {
						if _, err := m.Assign(q); err != nil {
							t.Errorf("%s: Assign: %v", alg.Name(), err)
						}
					}
				}()
			}
			ag.Wait()
		}(alg)
	}
	wg.Wait()
}

// TestRestoreRebuildsModel checks Restore against Fit: given the fitted
// Result and the training dataset, the rebuilt model must assign
// identically to the original (the kd-tree re-derivation is exact), and
// malformed persisted state must be rejected rather than served.
func TestRestoreRebuildsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows, _ := gaussianMix(rng, 4, 100, 25, 2, 150, 3)
	ds := geom.MustFromRows(rows)
	p := defaultParams()
	m, err := Fit(ExDPC{}, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore("Ex-DPC", ds, m.Result(), p, m.FitTime())
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm() != "Ex-DPC" || r.FitTime() != m.FitTime() || r.NumClusters() != m.NumClusters() {
		t.Errorf("restored metadata: %s/%v/%d", r.Algorithm(), r.FitTime(), r.NumClusters())
	}
	got, err := r.AssignDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Result().Labels
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored Assign(%d) = %d, want %d", i, got[i], want[i])
		}
	}

	if _, err := Restore("nope", ds, m.Result(), p, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad := *m.Result()
	bad.Rho = bad.Rho[:ds.N-1]
	if _, err := Restore("Ex-DPC", ds, &bad, p, 0); err == nil {
		t.Error("short rho array accepted")
	}
	bad = *m.Result()
	bad.Centers = append(append([]int32(nil), bad.Centers...), int32(ds.N))
	if _, err := Restore("Ex-DPC", ds, &bad, p, 0); err == nil {
		t.Error("out-of-range center accepted")
	}
	bad = *m.Result()
	bad.Labels = append([]int32(nil), bad.Labels...)
	bad.Labels[0] = int32(len(bad.Centers))
	if _, err := Restore("Ex-DPC", ds, &bad, p, 0); err == nil {
		t.Error("out-of-range label accepted")
	}
}
