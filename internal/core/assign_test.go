package core

import (
	"math/rand"
	"testing"
)

func TestAssignerBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := grid2D(rng, 2, 200, 300, 10)
	p := Params{DCut: 25, RhoMin: 4, DeltaMin: 100, Workers: 2}
	res, err := ExDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 4 {
		t.Fatalf("setup: %d clusters", res.NumClusters())
	}
	as, err := NewAssigner(pts, res, p.DCut)
	if err != nil {
		t.Fatal(err)
	}
	// A point at a blob center inherits that blob's label.
	for b := 0; b < 4; b++ {
		ref := res.Labels[b*200]
		cx, cy := pts[b*200][0], pts[b*200][1]
		got, err := as.Assign([]float64{cx + 1, cy + 1})
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("blob %d: assigned %d, want %d", b, got, ref)
		}
	}
	// A far-away point becomes noise.
	if got, _ := as.Assign([]float64{-5000, -5000}); got != NoCluster {
		t.Errorf("distant point assigned %d, want noise", got)
	}
	// Dimension mismatch errors.
	if _, err := as.Assign([]float64{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestAssignAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := grid2D(rng, 2, 150, 300, 10)
	p := Params{DCut: 25, RhoMin: 4, DeltaMin: 100, Workers: 2}
	res, _ := ExDPC{}.Cluster(pts, p)
	as, _ := NewAssigner(pts, res, p.DCut)
	batch := [][]float64{{300, 300}, {600, 300}, {-1000, -1000}}
	labels, err := as.AssignAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 {
		t.Fatalf("got %d labels", len(labels))
	}
	if labels[0] == NoCluster || labels[1] == NoCluster {
		t.Error("on-blob points must be assigned")
	}
	if labels[0] == labels[1] {
		t.Error("different blobs must get different labels")
	}
	if labels[2] != NoCluster {
		t.Error("distant point must be noise")
	}
}

func TestNewAssignerValidation(t *testing.T) {
	res := &Result{Labels: []int32{0}}
	if _, err := NewAssigner(nil, res, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewAssigner([][]float64{{1, 2}, {3, 4}}, res, 1); err == nil {
		t.Error("label/point count mismatch accepted")
	}
	if _, err := NewAssigner([][]float64{{1, 2}}, res, 0); err == nil {
		t.Error("zero dcut accepted")
	}
}

func TestSuggestCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := grid2D(rng, 3, 150, 300, 12)
	p := Params{DCut: 30, RhoMin: 4, DeltaMin: 120, Workers: 2}
	res, _ := ExDPC{}.Cluster(pts, p)
	if res.NumClusters() != 9 {
		t.Fatalf("setup: %d clusters", res.NumClusters())
	}
	top := SuggestCenters(res, 9, p.RhoMin)
	if len(top) != 9 {
		t.Fatalf("got %d candidates", len(top))
	}
	// The gamma top-9 must be exactly the selected centers (as sets).
	want := map[int32]bool{}
	for _, c := range res.Centers {
		want[c] = true
	}
	for _, id := range top {
		if !want[id] {
			t.Errorf("gamma candidate %d is not a center", id)
		}
	}
	// The global peak (delta = Inf) ranks first.
	if !want[top[0]] {
		t.Error("top candidate not a center")
	}
	// k larger than candidate pool clamps.
	all := SuggestCenters(res, len(pts)+10, 0)
	if len(all) != len(pts) {
		t.Errorf("clamped k returned %d", len(all))
	}
}
