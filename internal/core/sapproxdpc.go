package core

import (
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// SApproxDPC is the paper's tunable approximation algorithm (§5). It
// converts point clustering into cell clustering: the grid G' has cell
// side eps*d_cut/sqrt(d), one deterministic "picked" point represents each
// cell, and only picked points get exact local densities (one range search
// per cell). Non-picked points simply depend on their cell's picked point,
// so both the number of range searches and the dependent-point work shrink
// as eps grows — the time/accuracy trade of Table 5.
//
// Picked points resolve their dependent points in two phases: first via
// occupied neighbor cells N(c) (distance bounded by (1+eps)d_cut), then —
// for the set P'_pick with no denser picked point nearby — via temporary
// clusters with triangle-inequality pruning, or the Approx-DPC s-subset
// method when |P'_pick|^2 exceeds O(n).
type SApproxDPC struct{}

// Name implements Algorithm.
func (SApproxDPC) Name() string { return "S-Approx-DPC" }

// Cluster implements Algorithm.
func (a SApproxDPC) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (SApproxDPC) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	d := ds.Dim
	eps := p.epsilon()
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := kdtree.BuildAll(ds)
	g := grid.Build(ds, eps*grid.SideForDCut(p.DCut, d))
	res.Timing.Build = time.Since(start)

	// Picked point of every cell: the first member in dataset order
	// ("we can deterministically decide p in an arbitrary way").
	nc := g.NumCells()
	picked := make([]int32, nc)
	for c := range picked {
		picked[c] = g.Cells[c].Points[0]
	}

	// Local densities: one range search per cell from the picked point;
	// N(c) falls out of the same search. Dynamically scheduled like
	// Ex-DPC's density phase (§5, "Implementation for parallel processing").
	start = time.Now()
	partition.Dynamic(nc, workers, func(c int) {
		cell := &g.Cells[c]
		pi := picked[c]
		count := 0
		seen := make(map[int32]struct{})
		tree.RangeSearch(ds.At(int(pi)), p.DCut, func(id int32, _ float64) {
			count++
			if xc := g.PointCell[id]; xc != int32(c) {
				if _, ok := seen[xc]; !ok {
					seen[xc] = struct{}{}
					cell.Neighbors = append(cell.Neighbors, xc)
				}
			}
		})
		res.Rho[pi] = float64(count) + jitter(int(pi))
	})
	// Non-picked points inherit the picked density (rho_min is "not
	// applicable" to them; inheriting makes the noise rule agree with
	// their representative) and depend on the picked point at a distance
	// of at most the cell diagonal eps*d_cut. The recorded delta is capped
	// at d_cut so an eps > 1 cannot fabricate cluster centers.
	nonPickedDelta := math.Min(eps, 1) * p.DCut
	partition.Dynamic(nc, workers, func(c int) {
		pi := picked[c]
		for _, m := range g.Cells[c].Points {
			if m == pi {
				continue
			}
			res.Rho[m] = res.Rho[pi]
			res.Dep[m] = pi
			res.Delta[m] = nonPickedDelta
		}
	})
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	// First phase: a picked point takes the nearest denser picked point in
	// N(c), if any; the distance is bounded by (1+eps)d_cut.
	const unresolvedMark = int32(-2)
	partition.Dynamic(nc, workers, func(c int) {
		pi := picked[c]
		bestSq := math.Inf(1)
		best := unresolvedMark
		for _, nb := range g.Cells[c].Neighbors {
			pj := picked[nb]
			if res.Rho[pj] <= res.Rho[pi] {
				continue
			}
			if v := geom.SqDistIdx(ds, pi, pj); v < bestSq {
				bestSq, best = v, pj
			}
		}
		res.Dep[pi] = best
		if best != unresolvedMark {
			res.Delta[pi] = math.Sqrt(bestSq)
		}
	})

	var unresolved []int32 // P'_pick
	for _, pi := range picked {
		if res.Dep[pi] == unresolvedMark {
			unresolved = append(unresolved, pi)
		}
	}

	if len(unresolved)*len(unresolved) > 4*n {
		// |P'_pick|^2 exceeds O(n): fall back to the Approx-DPC exact
		// machinery restricted to the picked universe.
		sApproxSubsetFallback(ds, res, picked, unresolved, workers, d)
	} else {
		sApproxTemporaryClusters(ds, g, res, picked, unresolved, workers)
	}
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}

// sApproxTemporaryClusters implements the second phase of §5: temporary
// clusters rooted at P'_pick, radii r_i, brute-force nearest denser root
// p', then triangle-inequality pruning dist(p_i,p_k) - r_k <= dist(p_i,p')
// over candidate clusters.
func sApproxTemporaryClusters(ds *geom.Dataset, g *grid.Grid, res *Result, picked, unresolved []int32, workers int) {
	// Temporary cluster of every picked point = the P'_pick root its
	// first-phase dependency chain reaches. Memoized chain following.
	root := make(map[int32]int32, len(picked))
	var chase func(i int32) int32
	chase = func(i int32) int32 {
		if r, ok := root[i]; ok {
			return r
		}
		d := res.Dep[i]
		var r int32
		if d < 0 { // unresolved mark or peak: i is itself a root
			r = i
		} else {
			r = chase(d)
		}
		root[i] = r
		return r
	}
	members := make(map[int32][]int32, len(unresolved))
	radius := make(map[int32]float64, len(unresolved))
	for _, pi := range picked {
		r := chase(pi)
		members[r] = append(members[r], pi)
	}
	for r, ms := range members {
		var maxSq float64
		for _, m := range ms {
			if v := geom.SqDistIdx(ds, r, m); v > maxSq {
				maxSq = v
			}
		}
		radius[r] = math.Sqrt(maxSq)
	}

	partition.Dynamic(len(unresolved), workers, func(k int) {
		pi := unresolved[k]
		// p': nearest root with higher density (brute force over P'_pick).
		bestSq := math.Inf(1)
		best := NoDependent
		for _, pj := range unresolved {
			if res.Rho[pj] <= res.Rho[pi] {
				continue
			}
			if v, ok := geom.SqDistIdxPartial(ds, pi, pj, bestSq); ok && v < bestSq {
				bestSq, best = v, pj
			}
		}
		if best == NoDependent {
			// Global picked-density peak.
			res.Dep[pi] = NoDependent
			res.Delta[pi] = math.Inf(1)
			return
		}
		dPrime := math.Sqrt(bestSq)
		// Prune temporary clusters that cannot beat p', then scan
		// survivors. Dependency chains always point to denser points, so a
		// root is the densest member of its cluster and rho_k <= rho_i
		// prunes the whole cluster; the geometric test is the paper's
		// dist(p_i, p_k) - r_k > dist(p_i, p').
		for rt, ms := range members {
			if res.Rho[rt] <= res.Rho[pi] {
				continue
			}
			if geom.DistIdx(ds, pi, rt)-radius[rt] > dPrime {
				continue
			}
			for _, m := range ms {
				if res.Rho[m] <= res.Rho[pi] {
					continue
				}
				if v, ok := geom.SqDistIdxPartial(ds, pi, m, bestSq); ok && (v < bestSq || (v == bestSq && m < best)) {
					bestSq, best = v, m
				}
			}
		}
		res.Dep[pi] = best
		res.Delta[pi] = math.Sqrt(bestSq)
	})
}

// sApproxSubsetFallback resolves P'_pick with the Approx-DPC s-subset
// method over the picked universe: remap picked points into a compact
// index space, run exactDependents there, and map back.
func sApproxSubsetFallback(ds *geom.Dataset, res *Result, picked, unresolved []int32, workers, d int) {
	sub := ds.Select(picked)
	rho := make([]float64, len(picked))
	back := make([]int32, len(picked))
	fwd := make(map[int32]int32, len(picked))
	for k, pi := range picked {
		rho[k] = res.Rho[pi]
		back[k] = pi
		fwd[pi] = int32(k)
	}
	queries := make([]int32, len(unresolved))
	for k, pi := range unresolved {
		queries[k] = fwd[pi]
	}
	delta := make([]float64, len(picked))
	dep := make([]int32, len(picked))
	exactDependents(sub, rho, queries, delta, dep, workers, d)
	for _, q := range queries {
		pi := back[q]
		if dep[q] == NoDependent {
			res.Dep[pi] = NoDependent
			res.Delta[pi] = math.Inf(1)
		} else {
			res.Dep[pi] = back[dep[q]]
			res.Delta[pi] = delta[q]
		}
	}
}
