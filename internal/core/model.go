package core

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/partition"
)

// Model is a fitted clustering frozen for serving: the training dataset,
// the full Result (Rho/Delta/Dep/Centers/Labels), the parameters and
// algorithm that produced it, and the kd-tree over the training points
// that Assign uses to label new points in O(log n) per query instead of
// re-clustering. A Model is immutable after Fit and safe for concurrent
// use — the fit-once/assign-many contract the serving layer builds on.
type Model struct {
	ds       *geom.Dataset
	res      *Result
	params   Params
	algo     string
	assigner *Assigner
	fitTime  time.Duration
}

// Fit runs one algorithm over a dataset and freezes the outcome into a
// Model. The dataset must not be mutated afterwards; the Model keeps a
// reference, not a copy. Works uniformly for every Algorithm in the
// framework — the assignment index is a kd-tree over the training points
// (the same structure Ex-DPC fits with), rebuilt here because the
// algorithms do not all retain their internal index.
func Fit(alg Algorithm, ds *geom.Dataset, p Params) (*Model, error) {
	start := time.Now()
	res, err := alg.ClusterDataset(ds, p)
	if err != nil {
		return nil, err
	}
	assigner, err := NewAssignerDataset(ds, res, p.DCut)
	if err != nil {
		return nil, err
	}
	return &Model{
		ds:       ds,
		res:      res,
		params:   p,
		algo:     alg.Name(),
		assigner: assigner,
		fitTime:  time.Since(start),
	}, nil
}

// Restore rebuilds a fitted Model from an already-computed Result
// without re-running the algorithm. It serves two construction paths:
// persisted snapshots (the dataset and Result are taken as-is and only
// the kd-tree assignment index — the one piece a snapshot does not
// serialize — is re-derived from the points) and density-index re-cuts
// (a parameter-flexible index derives the Result for new parameters,
// then freezes it into a servable Model here). fitTime is the cost of
// producing the Result — the original fit, or the re-cut — kept so such
// models report honest ModelStats. The algorithm name must resolve
// against the registry and the result must match the dataset.
func Restore(algorithm string, ds *geom.Dataset, res *Result, p Params, fitTime time.Duration) (*Model, error) {
	if _, ok := AlgorithmByName(algorithm); !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", algorithm)
	}
	if len(res.Rho) != ds.N || len(res.Delta) != ds.N || len(res.Dep) != ds.N {
		return nil, fmt.Errorf("core: result arrays sized %d/%d/%d for %d points",
			len(res.Rho), len(res.Delta), len(res.Dep), ds.N)
	}
	for l, c := range res.Centers {
		if c < 0 || int(c) >= ds.N {
			return nil, fmt.Errorf("core: center %d is point %d, out of range [0,%d)", l, c, ds.N)
		}
	}
	nc := int32(len(res.Centers))
	for i, l := range res.Labels {
		if l != NoCluster && (l < 0 || l >= nc) {
			return nil, fmt.Errorf("core: point %d has label %d, out of range [0,%d)", i, l, nc)
		}
	}
	assigner, err := NewAssignerDataset(ds, res, p.DCut)
	if err != nil {
		return nil, err
	}
	return &Model{
		ds:       ds,
		res:      res,
		params:   p,
		algo:     algorithm,
		assigner: assigner,
		fitTime:  fitTime,
	}, nil
}

// Algorithm returns the name of the algorithm that fitted the model.
func (m *Model) Algorithm() string { return m.algo }

// FitTime returns the wall-clock cost of the original fit, preserved
// across Restore.
func (m *Model) FitTime() time.Duration { return m.fitTime }

// Params returns the parameters the model was fitted with.
func (m *Model) Params() Params { return m.params }

// Dataset returns the frozen training dataset. Callers must not mutate it.
func (m *Model) Dataset() *geom.Dataset { return m.ds }

// Result returns the fitted clustering. Callers must not mutate it.
func (m *Model) Result() *Result { return m.res }

// N returns the number of training points.
func (m *Model) N() int { return m.ds.N }

// Dim returns the training dimensionality.
func (m *Model) Dim() int { return m.ds.Dim }

// NumClusters returns the number of fitted clusters.
func (m *Model) NumClusters() int { return m.res.NumClusters() }

// Assign labels one new point: it inherits the cluster of its nearest
// training point, or NoCluster when that neighbor is farther than d_cut
// or is itself noise. On a training point it reproduces the fitted label
// exactly (the nearest neighbor is the point itself). Safe for concurrent
// use.
func (m *Model) Assign(p []float64) (int32, error) {
	return m.assigner.Assign(p)
}

// AssignAll labels a batch of new points in parallel with the given
// worker count (<= 0 means Params.Workers semantics: all CPUs). Safe for
// concurrent use.
func (m *Model) AssignAll(pts [][]float64, workers int) ([]int32, error) {
	if len(pts) == 0 {
		return []int32{}, nil // non-nil: serving marshals this as [], not null
	}
	for i, p := range pts {
		if len(p) != m.ds.Dim {
			return nil, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), m.ds.Dim)
		}
	}
	out := make([]int32, len(pts))
	partition.DynamicChunked(len(pts), Params{Workers: workers}.workers(), 32, func(i int) {
		l, _ := m.assigner.Assign(pts[i]) // dims pre-checked above
		out[i] = l
	})
	return out, nil
}

// AssignDataset labels every point of a flat dataset in parallel. Safe
// for concurrent use.
func (m *Model) AssignDataset(qs *geom.Dataset, workers int) ([]int32, error) {
	if qs.N == 0 {
		return []int32{}, nil
	}
	if qs.Dim != m.ds.Dim {
		return nil, fmt.Errorf("core: query dataset has dimension %d, want %d", qs.Dim, m.ds.Dim)
	}
	out := make([]int32, qs.N)
	partition.DynamicChunked(qs.N, Params{Workers: workers}.workers(), 32, func(i int) {
		l, _ := m.assigner.Assign(qs.At(i))
		out[i] = l
	})
	return out, nil
}

// ModelStats summarizes a fitted model for serving APIs and diagnostics.
type ModelStats struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	Clusters  int     `json:"clusters"`
	Noise     int     `json:"noise"`
	FitSecs   float64 `json:"fit_seconds"`
	Timing    struct {
		Build float64 `json:"build_seconds"`
		Rho   float64 `json:"rho_seconds"`
		Delta float64 `json:"delta_seconds"`
		Label float64 `json:"label_seconds"`
	} `json:"timing"`
}

// Stats returns the model summary.
func (m *Model) Stats() ModelStats {
	noise := 0
	for _, l := range m.res.Labels {
		if l == NoCluster {
			noise++
		}
	}
	s := ModelStats{
		Algorithm: m.algo,
		N:         m.ds.N,
		Dim:       m.ds.Dim,
		Clusters:  m.res.NumClusters(),
		Noise:     noise,
		FitSecs:   m.fitTime.Seconds(),
	}
	s.Timing.Build = m.res.Timing.Build.Seconds()
	s.Timing.Rho = m.res.Timing.Rho.Seconds()
	s.Timing.Delta = m.res.Timing.Delta.Seconds()
	s.Timing.Label = m.res.Timing.Label.Seconds()
	return s
}

// Registered returns all ten framework algorithms — the paper's seven
// evaluated ones in legend order plus the three dropped competitors —
// for serving registries and exhaustive tests.
func Registered() []Algorithm {
	return []Algorithm{
		Scan{}, RtreeScan{}, LSHDDP{}, CFSFDPA{},
		ExDPC{}, ApproxDPC{}, SApproxDPC{},
		FastDPeak{}, DPCG{}, CFSFDPDE{},
	}
}

// AlgorithmByName resolves a paper algorithm name ("Ex-DPC",
// "Approx-DPC", ...) against the full registry; ok is false for unknown
// names.
func AlgorithmByName(name string) (Algorithm, bool) {
	for _, a := range Registered() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// CanonicalParams returns p with every parameter the named algorithm
// ignores zeroed: Seed matters only to the randomized substrates
// (LSH-DDP's projections, the k-means pivots of CFSFDP-A and
// CFSFDP-DE), Epsilon only to S-Approx-DPC (where <= 0 means 1). Two
// parameter sets that canonicalize equally produce identical models, so
// this is the model-cache identity rule; fitting with the canonical
// form gives the same result as fitting with the original.
func CanonicalParams(algorithm string, p Params) Params {
	switch algorithm {
	case "LSH-DDP", "CFSFDP-A", "CFSFDP-DE":
	default:
		p.Seed = 0
	}
	if algorithm == "S-Approx-DPC" {
		p.Epsilon = p.epsilon()
	} else {
		p.Epsilon = 0
	}
	return p
}
