package core

import (
	"math"
	"math/rand"
	"testing"
)

// gaussianMix generates k well-separated Gaussian blobs plus uniform noise;
// the workhorse fixture for cross-algorithm validation.
func gaussianMix(rng *rand.Rand, k, perCluster, noise, d int, domain, sd float64) ([][]float64, []int) {
	var pts [][]float64
	var truth []int
	centers := make([][]float64, k)
	for c := range centers {
		ct := make([]float64, d)
		for j := range ct {
			ct[j] = domain*0.1 + rng.Float64()*domain*0.8
		}
		centers[c] = ct
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = centers[c][j] + rng.NormFloat64()*sd
			}
			pts = append(pts, p)
			truth = append(truth, c)
		}
	}
	for i := 0; i < noise; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * domain
		}
		pts = append(pts, p)
		truth = append(truth, -1)
	}
	return pts, truth
}

// grid2D places k*k tight blobs on a grid — deterministic cluster count.
func grid2D(rng *rand.Rand, side, perCluster int, spacing, sd float64) [][]float64 {
	var pts [][]float64
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			cx, cy := float64(x+1)*spacing, float64(y+1)*spacing
			for i := 0; i < perCluster; i++ {
				pts = append(pts, []float64{cx + rng.NormFloat64()*sd, cy + rng.NormFloat64()*sd})
			}
		}
	}
	return pts
}

func defaultParams() Params {
	return Params{DCut: 8, RhoMin: 5, DeltaMin: 30, Workers: 4, Epsilon: 0.4, Seed: 1}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{Scan{}, RtreeScan{}, ExDPC{}, ApproxDPC{}, SApproxDPC{}, LSHDDP{}, CFSFDPA{}}
}

func exactAlgorithms() []Algorithm {
	return []Algorithm{Scan{}, RtreeScan{}, ExDPC{}, CFSFDPA{}}
}

func TestParamsValidate(t *testing.T) {
	base := defaultParams()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := base
	bad.DCut = 0
	if bad.Validate() == nil {
		t.Error("DCut=0 accepted")
	}
	bad = base
	bad.DeltaMin = base.DCut
	if bad.Validate() == nil {
		t.Error("DeltaMin == DCut accepted (Definition 5 requires >)")
	}
	bad = base
	bad.RhoMin = -1
	if bad.Validate() == nil {
		t.Error("negative RhoMin accepted")
	}
}

func TestAllAlgorithmsRejectBadInput(t *testing.T) {
	for _, alg := range allAlgorithms() {
		if _, err := alg.Cluster(nil, defaultParams()); err == nil {
			t.Errorf("%s: empty dataset accepted", alg.Name())
		}
		if _, err := alg.Cluster([][]float64{{1, 2}}, Params{}); err == nil {
			t.Errorf("%s: zero params accepted", alg.Name())
		}
	}
}

// TestExactAlgorithmsAgree is the central cross-check: Scan, R-tree+Scan,
// Ex-DPC, and CFSFDP-A are all exact, so they must produce identical rho,
// identical delta (up to fp rounding), and identical labels.
func TestExactAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := gaussianMix(rng, 5, 150, 30, 2, 1000, 10)
	p := Params{DCut: 25, RhoMin: 4, DeltaMin: 80, Workers: 4, Seed: 3}
	ref, err := Scan{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range exactAlgorithms()[1:] {
		got, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for i := range pts {
			if got.Rho[i] != ref.Rho[i] {
				t.Fatalf("%s: rho[%d] = %v, want %v", alg.Name(), i, got.Rho[i], ref.Rho[i])
			}
			if !almostEq(got.Delta[i], ref.Delta[i]) {
				t.Fatalf("%s: delta[%d] = %v, want %v", alg.Name(), i, got.Delta[i], ref.Delta[i])
			}
		}
		if len(got.Centers) != len(ref.Centers) {
			t.Fatalf("%s: %d centers, want %d", alg.Name(), len(got.Centers), len(ref.Centers))
		}
		for i := range got.Centers {
			if got.Centers[i] != ref.Centers[i] {
				t.Fatalf("%s: center %d = %d, want %d", alg.Name(), i, got.Centers[i], ref.Centers[i])
			}
		}
		for i := range pts {
			if got.Labels[i] != ref.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", alg.Name(), i, got.Labels[i], ref.Labels[i])
			}
		}
	}
}

func almostEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
}

// TestTheorem4CenterGuarantee verifies Approx-DPC returns exactly the
// cluster centers of Ex-DPC for the same rho_min and delta_min.
func TestTheorem4CenterGuarantee(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts, _ := gaussianMix(rng, 6, 120, 50, 2, 1000, 12)
		p := Params{DCut: 20, RhoMin: 3, DeltaMin: 70, Workers: 4, Seed: seed}
		ex, err := ExDPC{}.Cluster(pts, p)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := ApproxDPC{}.Cluster(pts, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Centers) != len(ap.Centers) {
			t.Fatalf("seed %d: Approx has %d centers, Ex has %d", seed, len(ap.Centers), len(ex.Centers))
		}
		for i := range ex.Centers {
			if ex.Centers[i] != ap.Centers[i] {
				t.Fatalf("seed %d: center sets differ: %v vs %v", seed, ex.Centers, ap.Centers)
			}
		}
		// Approx-DPC also computes exact local densities.
		for i := range pts {
			if ap.Rho[i] != ex.Rho[i] {
				t.Fatalf("seed %d: Approx rho[%d] = %v, want exact %v", seed, i, ap.Rho[i], ex.Rho[i])
			}
		}
	}
}

// TestApproxDeltaExactAboveDCut: Approx-DPC computes the exact dependent
// distance for every point whose true delta exceeds d_cut (the proof body
// of Theorem 4).
func TestApproxDeltaExactAboveDCut(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts, _ := gaussianMix(rng, 4, 100, 40, 2, 800, 15)
	p := Params{DCut: 22, RhoMin: 3, DeltaMin: 60, Workers: 2, Seed: 9}
	ex, _ := ExDPC{}.Cluster(pts, p)
	ap, _ := ApproxDPC{}.Cluster(pts, p)
	for i := range pts {
		if ex.Delta[i] > p.DCut && !almostEq(ap.Delta[i], ex.Delta[i]) {
			t.Fatalf("point %d: true delta %v > d_cut but Approx recorded %v", i, ex.Delta[i], ap.Delta[i])
		}
		if ex.Delta[i] <= p.DCut && ap.Delta[i] > p.DCut+1e-9 {
			t.Fatalf("point %d: true delta %v <= d_cut but Approx recorded larger %v", i, ex.Delta[i], ap.Delta[i])
		}
	}
}

// TestKnownClusterCount: all algorithms must find the planted 3x3 = 9
// clusters on a well-separated grid, with identical center *count*.
func TestKnownClusterCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := grid2D(rng, 3, 200, 300, 12)
	p := Params{DCut: 30, RhoMin: 5, DeltaMin: 120, Workers: 4, Epsilon: 0.3, Seed: 2}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.NumClusters() != 9 {
			t.Errorf("%s: found %d clusters, want 9", alg.Name(), res.NumClusters())
		}
	}
}

// TestClusterPurity: on well-separated blobs, every algorithm must put
// points of one blob into one cluster (allowing a small fraction of
// border/noise mistakes for the approximate ones).
func TestClusterPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := grid2D(rng, 2, 300, 400, 15)
	p := Params{DCut: 40, RhoMin: 5, DeltaMin: 150, Workers: 4, Epsilon: 0.3, Seed: 5}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		bad := 0
		for b := 0; b < 4; b++ {
			counts := map[int32]int{}
			for i := b * 300; i < (b+1)*300; i++ {
				counts[res.Labels[i]]++
			}
			best := 0
			for _, c := range counts {
				if c > best {
					best = c
				}
			}
			bad += 300 - best
		}
		if float64(bad) > 0.05*1200 {
			t.Errorf("%s: %d of 1200 points mis-grouped", alg.Name(), bad)
		}
	}
}

// TestNoiseDetection: uniform background points far from every blob must
// be labelled NoCluster by the exact algorithms.
func TestNoiseDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var pts [][]float64
	for i := 0; i < 400; i++ {
		pts = append(pts, []float64{100 + rng.NormFloat64()*5, 100 + rng.NormFloat64()*5})
	}
	// Lone far-away stragglers: local density 1 each.
	pts = append(pts, []float64{500, 500}, []float64{900, 100}, []float64{100, 900})
	p := Params{DCut: 15, RhoMin: 5, DeltaMin: 50, Workers: 2, Seed: 1}
	for _, alg := range exactAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for i := 400; i < 403; i++ {
			if res.Labels[i] != NoCluster {
				t.Errorf("%s: straggler %d labelled %d, want noise", alg.Name(), i, res.Labels[i])
			}
		}
		for i := 0; i < 400; i++ {
			if res.Labels[i] == NoCluster {
				t.Errorf("%s: dense point %d labelled noise", alg.Name(), i)
				break
			}
		}
	}
}

// TestDependencyInvariants checks structural invariants of the dependency
// forest on every algorithm: exactly the centers are self-rooted labels,
// dependent distances match dependent points for exact algorithms, and
// each non-peak point's dependent point is denser.
func TestDependencyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts, _ := gaussianMix(rng, 3, 150, 20, 3, 500, 10)
	p := Params{DCut: 30, RhoMin: 3, DeltaMin: 90, Workers: 4, Epsilon: 0.5, Seed: 7}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		peaks := 0
		for i := range pts {
			dep := res.Dep[i]
			if dep == NoDependent {
				peaks++
				if !math.IsInf(res.Delta[i], 1) {
					t.Errorf("%s: peak %d has finite delta %v", alg.Name(), i, res.Delta[i])
				}
				continue
			}
			if dep < 0 || int(dep) >= len(pts) || dep == int32(i) {
				t.Errorf("%s: invalid dependent %d for point %d", alg.Name(), dep, i)
			}
		}
		if peaks < 1 {
			t.Errorf("%s: no global density peak found", alg.Name())
		}
		// Exact algorithms: dependent point is strictly denser, and delta
		// is exactly the distance to it.
		if alg.Name() == "Scan" || alg.Name() == "Ex-DPC" {
			for i := range pts {
				dep := res.Dep[i]
				if dep == NoDependent {
					continue
				}
				if res.Rho[dep] <= res.Rho[i] {
					t.Errorf("%s: dep of %d is not denser", alg.Name(), i)
				}
			}
		}
	}
}

// TestLabelsPartitionClusters: labels are in [-1, numClusters) and every
// center is labelled with its own cluster id.
func TestLabelsPartitionClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts, _ := gaussianMix(rng, 4, 100, 30, 2, 600, 10)
	p := Params{DCut: 20, RhoMin: 3, DeltaMin: 60, Workers: 3, Epsilon: 0.5, Seed: 4}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		k := int32(res.NumClusters())
		for i, l := range res.Labels {
			if l < NoCluster || l >= k {
				t.Fatalf("%s: label[%d] = %d outside [-1,%d)", alg.Name(), i, l, k)
			}
		}
		for l, c := range res.Centers {
			if res.Labels[c] != int32(l) {
				t.Errorf("%s: center %d labelled %d, want %d", alg.Name(), c, res.Labels[c], l)
			}
		}
	}
}

// TestWorkerCountInvariance: results must not depend on the worker count.
func TestWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts, _ := gaussianMix(rng, 3, 120, 20, 2, 500, 10)
	for _, alg := range allAlgorithms() {
		var ref *Result
		for _, w := range []int{1, 2, 8} {
			p := Params{DCut: 18, RhoMin: 3, DeltaMin: 60, Workers: w, Epsilon: 0.5, Seed: 6}
			res, err := alg.Cluster(pts, p)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for i := range pts {
				if res.Labels[i] != ref.Labels[i] {
					t.Fatalf("%s: labels differ between worker counts at %d", alg.Name(), i)
				}
				if res.Rho[i] != ref.Rho[i] {
					t.Fatalf("%s: rho differs between worker counts at %d", alg.Name(), i)
				}
			}
		}
	}
}

func TestSinglePointAndTinyInputs(t *testing.T) {
	p := Params{DCut: 1, RhoMin: 0, DeltaMin: 2, Workers: 2, Epsilon: 0.5}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster([][]float64{{5, 5}}, p)
		if err != nil {
			t.Fatalf("%s single point: %v", alg.Name(), err)
		}
		if res.NumClusters() != 1 || res.Labels[0] != 0 {
			t.Errorf("%s: single point should be its own cluster, got %d clusters", alg.Name(), res.NumClusters())
		}
		res, err = alg.Cluster([][]float64{{0, 0}, {0.1, 0}, {100, 100}}, p)
		if err != nil {
			t.Fatalf("%s three points: %v", alg.Name(), err)
		}
		if len(res.Rho) != 3 {
			t.Errorf("%s: wrong result size", alg.Name())
		}
	}
}

func TestDuplicatePointsAllAlgorithms(t *testing.T) {
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	for i := 25; i < 50; i++ {
		pts[i] = []float64{200, 200}
	}
	p := Params{DCut: 5, RhoMin: 2, DeltaMin: 10, Workers: 2, Epsilon: 0.5}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s duplicates: %v", alg.Name(), err)
		}
		if res.NumClusters() != 2 {
			t.Errorf("%s: duplicates gave %d clusters, want 2", alg.Name(), res.NumClusters())
		}
	}
}

func TestJitterDeterministicDistinct(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 100000; i++ {
		v := jitter(i)
		if v <= 0 || v >= 1 {
			t.Fatalf("jitter(%d) = %v outside (0,1)", i, v)
		}
		if seen[v] {
			t.Fatalf("jitter collision at %d", i)
		}
		seen[v] = true
	}
	if jitter(42) != jitter(42) {
		t.Error("jitter must be deterministic")
	}
}

func TestDecisionGraphAndSuggestDeltaMin(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts := grid2D(rng, 3, 150, 300, 12)
	p := Params{DCut: 30, RhoMin: 5, DeltaMin: 120, Workers: 4, Seed: 3}
	res, err := ExDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	dg := DecisionGraph(res)
	if len(dg) != len(pts) {
		t.Fatalf("decision graph has %d points", len(dg))
	}
	for i := 1; i < len(dg); i++ {
		if dg[i].Delta > dg[i-1].Delta {
			t.Fatal("decision graph not sorted by descending delta")
		}
	}
	// The suggested threshold for 9 clusters must actually yield 9 centers.
	dm, ok := SuggestDeltaMin(res, 9, p.RhoMin)
	if !ok {
		t.Fatal("SuggestDeltaMin failed")
	}
	count := 0
	for i := range res.Delta {
		if res.Rho[i] >= p.RhoMin && res.Delta[i] >= dm {
			count++
		}
	}
	if count != 9 {
		t.Errorf("suggested delta_min selects %d centers, want 9", count)
	}
	if _, ok := SuggestDeltaMin(res, len(pts)+1, 0); ok {
		t.Error("SuggestDeltaMin should fail when k exceeds the dataset")
	}
}

// TestSApproxEpsilonAccuracy: with a tiny epsilon nearly every cell is a
// single point, so S-Approx-DPC approaches Ex-DPC's clustering.
func TestSApproxEpsilonAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pts := grid2D(rng, 2, 250, 350, 14)
	p := Params{DCut: 35, RhoMin: 4, DeltaMin: 140, Workers: 4, Epsilon: 0.05, Seed: 8}
	ex, _ := ExDPC{}.Cluster(pts, p)
	sa, err := SApproxDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NumClusters() != ex.NumClusters() {
		t.Fatalf("eps=0.05: %d clusters, exact has %d", sa.NumClusters(), ex.NumClusters())
	}
	agree := 0
	for b := 0; b < 4; b++ {
		counts := map[[2]int32]int{}
		for i := b * 250; i < (b+1)*250; i++ {
			counts[[2]int32{ex.Labels[i], sa.Labels[i]}]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	if float64(agree) < 0.97*1000 {
		t.Errorf("eps=0.05 agreement %d/1000 too low", agree)
	}
}

// TestSApproxFallbackPath forces |P'_pick|^2 > 4n so the s-subset fallback
// runs: many tiny isolated cells, each its own density peak.
func TestSApproxFallbackPath(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	var pts [][]float64
	// 200 isolated points on a coarse lattice: every cell is one point and
	// no denser picked point exists within d_cut of most of them.
	for x := 0; x < 20; x++ {
		for y := 0; y < 10; y++ {
			pts = append(pts, []float64{float64(x) * 50, float64(y) * 50})
		}
	}
	_ = rng
	p := Params{DCut: 10, RhoMin: 0, DeltaMin: 20, Workers: 2, Epsilon: 1.0}
	res, err := SApproxDPC{}.Cluster(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	// Each isolated point has rho = 1 and no neighbor within d_cut, so all
	// should be their own cluster centers (delta >= 20 except... all
	// pairwise distances are 50 >= DeltaMin).
	if res.NumClusters() != len(pts) {
		t.Errorf("isolated lattice: %d clusters, want %d", res.NumClusters(), len(pts))
	}
}

func TestTimingPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	pts, _ := gaussianMix(rng, 2, 200, 0, 2, 300, 8)
	p := Params{DCut: 15, RhoMin: 2, DeltaMin: 40, Workers: 2, Epsilon: 0.5}
	for _, alg := range allAlgorithms() {
		res, err := alg.Cluster(pts, p)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Timing.Rho <= 0 || res.Timing.Delta <= 0 {
			t.Errorf("%s: timing not populated: %+v", alg.Name(), res.Timing)
		}
		if res.Timing.Total() < res.Timing.Rho {
			t.Errorf("%s: Total < Rho", alg.Name())
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[string]bool{
		"Scan": true, "R-tree + Scan": true, "Ex-DPC": true,
		"Approx-DPC": true, "S-Approx-DPC": true, "LSH-DDP": true, "CFSFDP-A": true,
	}
	for _, alg := range allAlgorithms() {
		if !want[alg.Name()] {
			t.Errorf("unexpected algorithm name %q", alg.Name())
		}
		delete(want, alg.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing algorithms: %v", want)
	}
}
