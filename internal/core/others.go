package core

// This file implements the three further competitors the paper's §6
// mentions testing and then omits from the main charts: FastDPeak (slow),
// DPCG (slow), and CFSFDP-DE (inaccurate). They are reproduced here so
// the harness can regenerate that paragraph's observations; they are not
// part of the paper's main comparison set.

import (
	"math"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/kmeans"
	"repro/internal/partition"
)

// FastDPeak is a kNN-based DPC in the manner of Chen et al.
// (Knowledge-Based Systems 2020): local density still follows
// Definition 1, but every point additionally materializes its k nearest
// neighbors; the dependent point is taken from the kNN list when a denser
// neighbor appears there and falls back to an exact search otherwise. The
// per-point kNN searches dominate and make it slower than Ex-DPC — the
// behaviour the paper reports ("FastDPeak ... took 8114 seconds").
type FastDPeak struct {
	// K is the neighbor-list size; 0 means 32.
	K int
}

// Name implements Algorithm.
func (FastDPeak) Name() string { return "FastDPeak" }

// Cluster implements Algorithm.
func (a FastDPeak) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a FastDPeak) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	d := ds.Dim
	k := a.K
	if k <= 0 {
		k = 32
	}
	if k > n {
		k = n
	}
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	tree := kdtree.BuildAll(ds)
	res.Timing.Build = time.Since(start)

	// Density phase: a range count per point (Definition 1) plus the kNN
	// list that the dependent phase consumes.
	start = time.Now()
	knnIDs := make([][]int32, n)
	partition.DynamicChunked(n, workers, 4, func(i int) {
		res.Rho[i] = float64(tree.RangeCount(ds.At(i), p.DCut)) + jitter(i)
		ids, _ := tree.KNN(ds.At(i), k+1) // +1: the query point itself
		// Drop the self match (distance zero, same index).
		out := make([]int32, 0, k)
		for _, id := range ids {
			if id != int32(i) {
				out = append(out, id)
			}
		}
		knnIDs[i] = out
	})
	res.Timing.Rho = time.Since(start)

	// Dependent phase: kNN shortcut, exact fallback.
	start = time.Now()
	const unresolvedMark = int32(-2)
	partition.DynamicChunked(n, workers, 16, func(i int) {
		for _, j := range knnIDs[i] { // ascending distance order
			if res.Rho[j] > res.Rho[i] {
				res.Dep[i] = j
				res.Delta[i] = geom.DistIdx(ds, int32(i), j)
				return
			}
		}
		res.Dep[i] = unresolvedMark
	})
	var unresolved []int32
	for i := int32(0); i < int32(n); i++ {
		if res.Dep[i] == unresolvedMark {
			unresolved = append(unresolved, i)
		}
	}
	exactDependents(ds, res.Rho, unresolved, res.Delta, res.Dep, workers, d)
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}

// DPCG is a grid-based DPC in the manner of Xu et al. (IJMLC 2018):
// densities come from scanning the 3^d neighborhood of each point's grid
// cell, and dependent points from expanding cell rings around each point.
// The ring expansion has no index support, which is why it degrades on
// large or high-dimensional data (the paper: "DPCG ... took 14390
// seconds").
type DPCG struct{}

// Name implements Algorithm.
func (DPCG) Name() string { return "DPCG" }

// Cluster implements Algorithm.
func (a DPCG) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (DPCG) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	d := ds.Dim
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	start := time.Now()
	side := grid.SideForDCut(p.DCut, d)
	g := grid.Build(ds, side)
	res.Timing.Build = time.Since(start)

	// A d_cut ball around a point reaches at most ceil(d_cut/side) cells
	// in each axis direction.
	reach := int64(math.Ceil(p.DCut / side))
	sq := p.DCut * p.DCut

	start = time.Now()
	partition.DynamicChunked(n, workers, 4, func(i int) {
		pi := ds.At(i)
		count := 0
		scan := func(c int32) {
			for _, j := range g.Cells[c].Points {
				if v, ok := geom.SqDistToIdxPartial(ds, pi, j, sq); ok && v < sq {
					count++
				}
			}
		}
		own := g.PointCell[i]
		scan(own)
		g.ForEachNeighborCell(own, reach, scan)
		res.Rho[i] = float64(count) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	start = time.Now()
	partition.DynamicChunked(n, workers, 8, func(i int) {
		pi := ds.At(i)
		bestSq := math.Inf(1)
		best := NoDependent
		tryCell := func(c int32) {
			for _, j := range g.Cells[c].Points {
				if res.Rho[j] <= res.Rho[i] {
					continue
				}
				if v, ok := geom.SqDistToIdxPartial(ds, pi, j, bestSq); ok && v < bestSq {
					bestSq, best = v, j
				}
			}
		}
		own := g.PointCell[i]
		tryCell(own)
		// Expand rings until a hit is safe: every cell at Chebyshev ring r
		// is at least (r-1)*side away, so once (ring-1)*side exceeds the
		// best distance no further ring can improve it.
		for ring := int64(1); ; ring++ {
			if best != NoDependent {
				minPossible := float64(ring-1) * side
				if minPossible*minPossible > bestSq {
					break
				}
			}
			found := false
			g.ForEachNeighborRing(own, ring, func(c int32) {
				found = true
				tryCell(c)
			})
			maxRing := g.MaxRing(own)
			if ring >= maxRing && !found {
				break // scanned the whole occupied grid
			}
		}
		res.Dep[i] = best
		if best == NoDependent {
			res.Delta[i] = math.Inf(1)
		} else {
			res.Delta[i] = math.Sqrt(bestSq)
		}
	})
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}

// CFSFDPDE is the approximate variant of Bai et al. 2017 ("CFSFDP-DE"),
// which estimates densities from the k-means partition instead of exact
// range counts: a point's density estimate is the number of co-cluster
// points inside its pivot-distance window, and dependent points are only
// searched among the same k-means cluster (with a centroid-level hop when
// that fails). It trades accuracy for speed so aggressively that the
// paper measured a Rand index of 0.18 on PAMAP2 and dropped it.
type CFSFDPDE struct {
	// Pivots is k for the k-means partition; 0 means round(sqrt(n))
	// clamped to [4, 256].
	Pivots int
}

// Name implements Algorithm.
func (CFSFDPDE) Name() string { return "CFSFDP-DE" }

// Cluster implements Algorithm.
func (a CFSFDPDE) Cluster(pts [][]float64, p Params) (*Result, error) {
	return clusterRows(a, pts, p)
}

// ClusterDataset implements Algorithm.
func (a CFSFDPDE) ClusterDataset(ds *geom.Dataset, p Params) (*Result, error) {
	if err := validateInput(ds, p); err != nil {
		return nil, err
	}
	n := ds.N
	res := &Result{
		Rho:   make([]float64, n),
		Delta: make([]float64, n),
		Dep:   make([]int32, n),
	}
	workers := p.workers()

	k := a.Pivots
	if k <= 0 {
		k = int(math.Round(math.Sqrt(float64(n))))
		if k < 4 {
			k = 4
		}
		if k > 256 {
			k = 256
		}
	}

	start := time.Now()
	km := kmeans.Run(ds, k, 20, p.Seed+3)
	k = len(km.Centroids)
	pivotDist := make([]float64, n)
	groups := make([][]int32, k)
	for i := 0; i < n; i++ {
		c := km.Assign[i]
		pivotDist[i] = geom.Dist(ds.At(i), km.Centroids[c])
		groups[c] = append(groups[c], int32(i))
	}
	partition.Dynamic(k, workers, func(c int) {
		g := groups[c]
		sort.Slice(g, func(a, b int) bool { return pivotDist[g[a]] < pivotDist[g[b]] })
	})
	res.Timing.Build = time.Since(start)

	// Density estimate: co-cluster points whose pivot distance lies within
	// +- d_cut of the point's own — the window *size*, no exact distances.
	start = time.Now()
	partition.DynamicChunked(n, workers, 16, func(i int) {
		c := km.Assign[i]
		g := groups[c]
		center := pivotDist[i]
		lo := sort.Search(len(g), func(t int) bool { return pivotDist[g[t]] > center-p.DCut })
		hi := sort.Search(len(g), func(t int) bool { return pivotDist[g[t]] >= center+p.DCut })
		res.Rho[i] = float64(hi-lo) + jitter(i)
	})
	res.Timing.Rho = time.Since(start)

	// Dependent point: nearest denser point within the same k-means
	// cluster; if the point is its cluster's density peak, hop to the
	// nearest denser cluster peak.
	start = time.Now()
	peaks := make([]int32, k)
	for c := range groups {
		best := int32(-1)
		for _, j := range groups[c] {
			if best == -1 || res.Rho[j] > res.Rho[best] {
				best = j
			}
		}
		peaks[c] = best
	}
	partition.DynamicChunked(n, workers, 16, func(i int) {
		c := km.Assign[i]
		bestSq := math.Inf(1)
		best := NoDependent
		for _, j := range groups[c] {
			if res.Rho[j] <= res.Rho[i] {
				continue
			}
			if v, ok := geom.SqDistIdxPartial(ds, int32(i), j, bestSq); ok && v < bestSq {
				bestSq, best = v, j
			}
		}
		if best == NoDependent {
			for _, pk := range peaks {
				if pk < 0 || res.Rho[pk] <= res.Rho[i] {
					continue
				}
				if v, ok := geom.SqDistIdxPartial(ds, int32(i), pk, bestSq); ok && v < bestSq {
					bestSq, best = v, pk
				}
			}
		}
		res.Dep[i] = best
		if best == NoDependent {
			res.Delta[i] = math.Inf(1)
		} else {
			res.Delta[i] = math.Sqrt(bestSq)
		}
	})
	res.Timing.Delta = time.Since(start)

	start = time.Now()
	finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
