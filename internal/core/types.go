// Package core implements the Density-Peaks Clustering framework of
// Rodriguez & Laio (Science 2014) and the seven algorithms evaluated by
// Amagata & Hara, "Fast Density-Peaks Clustering: Multicore-based
// Parallelization Approach" (SIGMOD 2021): the straightforward Scan, the
// R-tree+Scan variant, the LSH-DDP and CFSFDP-A prior state of the art,
// and the paper's Ex-DPC, Approx-DPC, and S-Approx-DPC.
//
// All algorithms share one contract: given a dataset and Params they fill
// a Result with per-point local densities (rho), dependent distances
// (delta), dependent points, cluster centers, and labels, plus decomposed
// phase timings matching the paper's Table 6.
package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/geom"
)

// Params are the DPC inputs shared by every algorithm.
type Params struct {
	// DCut is the cutoff distance d_cut of Definition 1.
	DCut float64
	// RhoMin is the noise threshold: points with rho < RhoMin are noise
	// (Definition 4).
	RhoMin float64
	// DeltaMin is the cluster-center threshold (Definition 5); it must
	// exceed DCut.
	DeltaMin float64
	// Workers is the number of parallel workers; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Epsilon is S-Approx-DPC's approximation parameter (cell side becomes
	// eps*d_cut/sqrt(d)); ignored by the other algorithms. <= 0 means 1.
	Epsilon float64
	// Seed drives the randomized substrates (LSH projections, k-means++
	// pivots). The DPC algorithms themselves are deterministic.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.DCut <= 0 {
		return fmt.Errorf("core: DCut must be positive, got %v", p.DCut)
	}
	if p.DeltaMin <= p.DCut {
		return fmt.Errorf("core: DeltaMin (%v) must exceed DCut (%v) per Definition 5", p.DeltaMin, p.DCut)
	}
	if p.RhoMin < 0 {
		return fmt.Errorf("core: RhoMin must be non-negative, got %v", p.RhoMin)
	}
	return nil
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (p Params) epsilon() float64 {
	if p.Epsilon > 0 {
		return p.Epsilon
	}
	return 1
}

// Timing records the decomposed wall-clock cost of one run; Rho and Delta
// correspond to the paper's Table 6 columns, Build to index construction,
// and Label to noise/center selection plus label propagation.
type Timing struct {
	Build time.Duration
	Rho   time.Duration
	Delta time.Duration
	Label time.Duration
}

// Total returns the end-to-end time.
func (t Timing) Total() time.Duration { return t.Build + t.Rho + t.Delta + t.Label }

// NoCluster is the label of noise points and of points whose dependency
// chain ends at a noise point.
const NoCluster = int32(-1)

// NoDependent marks the dependent-point slot of the global density peak.
const NoDependent = int32(-1)

// Result is the output of one DPC run.
type Result struct {
	// Rho holds local densities: the Definition 1 count (including the
	// point itself) plus a deterministic per-index jitter in (0,1) that
	// makes all densities distinct, as the paper assumes.
	Rho []float64
	// Delta holds dependent distances; +Inf for the global density peak.
	Delta []float64
	// Dep holds dependent-point indices; NoDependent for the peak.
	Dep []int32
	// Labels holds cluster ids in [0, len(Centers)) or NoCluster.
	Labels []int32
	// Centers lists cluster-center point indices; Centers[l] is the center
	// of cluster l.
	Centers []int32
	// Timing is the decomposed cost of the run.
	Timing Timing
}

// NumClusters returns the number of clusters found.
func (r *Result) NumClusters() int { return len(r.Centers) }

// Algorithm is one of the evaluated DPC implementations.
type Algorithm interface {
	// Name returns the paper's name for the algorithm, e.g. "Ex-DPC".
	Name() string
	// Cluster runs DPC over row-slice points. It pays one copy to enter
	// the flat representation (geom.FromRows) and then delegates to
	// ClusterDataset; results are identical. Implementations must not
	// retain pts.
	Cluster(pts [][]float64, p Params) (*Result, error)
	// ClusterDataset runs DPC over a flat dataset with no copying — the
	// native, cache-friendly entry point. Implementations must not retain
	// ds.
	ClusterDataset(ds *geom.Dataset, p Params) (*Result, error)
}

// clusterRows is the shared [][]float64 adapter behind every algorithm's
// Cluster method: copy once into the flat layout (shape check only —
// ClusterDataset's validateInput performs the parameter check and the
// single NaN/Inf scan) and delegate.
func clusterRows(a Algorithm, pts [][]float64, p Params) (*Result, error) {
	ds, err := geom.PackRows(pts)
	if err != nil {
		return nil, err
	}
	return a.ClusterDataset(ds, p)
}

// jitter returns a deterministic pseudo-random value in (0,1) derived from
// the point index with a SplitMix64 step. The paper breaks density ties "by
// adding a random value in (0,1)"; using a deterministic hash keeps every
// algorithm's densities identical so the cluster-center guarantee of
// Theorem 4 is exactly reproducible.
func jitter(i int) float64 {
	z := uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// 53 mantissa bits; offset by 2^-54 so the value is never exactly 0.
	return float64(z>>11)/(1<<53) + 1.0/(1<<54)
}

// validateInput checks the dataset and parameters once per run.
func validateInput(ds *geom.Dataset, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return ds.Validate()
}
