package grid

import (
	"repro/internal/geom"

	"math/rand"
	"testing"
)

// denseGrid builds a fully occupied coordinate block [0,side)^d scaled so
// each integer cell holds one point.
func denseGrid(t *testing.T, dims []int) *Grid {
	t.Helper()
	var pts [][]float64
	var rec func(prefix []float64, dim int)
	rec = func(prefix []float64, dim int) {
		if dim == len(dims) {
			p := make([]float64, len(prefix))
			copy(p, prefix)
			pts = append(pts, p)
			return
		}
		for v := 0; v < dims[dim]; v++ {
			rec(append(prefix, float64(v)+0.5), dim+1)
		}
	}
	rec(nil, 0)
	return Build(geom.MustFromRows(pts), 1.0)
}

func TestRingEnumerationExactDistance(t *testing.T) {
	g := denseGrid(t, []int{9, 9})
	center := g.CellIDAt([]int64{4, 4})
	for ring := int64(1); ring <= 4; ring++ {
		seen := map[int32]bool{}
		g.ForEachNeighborRing(center, ring, func(id int32) {
			if seen[id] {
				t.Fatalf("ring %d: cell %d visited twice", ring, id)
			}
			seen[id] = true
			// Chebyshev distance must be exactly ring.
			c := g.Cells[id].Coords
			cheb := int64(0)
			for j, v := range c {
				dv := v - g.Cells[center].Coords[j]
				if dv < 0 {
					dv = -dv
				}
				if dv > cheb {
					cheb = dv
				}
			}
			if cheb != ring {
				t.Fatalf("ring %d returned cell at Chebyshev %d", ring, cheb)
			}
		})
		want := (2*ring+1)*(2*ring+1) - (2*ring-1)*(2*ring-1)
		if int64(len(seen)) != want {
			t.Fatalf("ring %d: %d cells, want %d", ring, len(seen), want)
		}
	}
}

func TestRingEnumeration3D(t *testing.T) {
	g := denseGrid(t, []int{5, 5, 5})
	center := g.CellIDAt([]int64{2, 2, 2})
	count := 0
	g.ForEachNeighborRing(center, 1, func(int32) { count++ })
	if count != 26 { // 3^3 - 1
		t.Errorf("3-d ring 1 has %d cells, want 26", count)
	}
	count = 0
	g.ForEachNeighborRing(center, 2, func(int32) { count++ })
	if count != 5*5*5-3*3*3 {
		t.Errorf("3-d ring 2 has %d cells, want %d", count, 5*5*5-3*3*3)
	}
}

func TestRingsPartitionNeighborhood(t *testing.T) {
	// Union of rings 1..r == ForEachNeighborCell with reach r.
	g := denseGrid(t, []int{7, 7})
	center := g.CellIDAt([]int64{3, 3})
	union := map[int32]bool{}
	for ring := int64(1); ring <= 3; ring++ {
		g.ForEachNeighborRing(center, ring, func(id int32) {
			if union[id] {
				t.Fatalf("cell %d in two rings", id)
			}
			union[id] = true
		})
	}
	reach := map[int32]bool{}
	g.ForEachNeighborCell(center, 3, func(id int32) { reach[id] = true })
	if len(union) != len(reach) {
		t.Fatalf("rings cover %d cells, reach covers %d", len(union), len(reach))
	}
	for id := range reach {
		if !union[id] {
			t.Fatalf("cell %d missing from ring union", id)
		}
	}
}

func TestRingSparseGrid(t *testing.T) {
	// Only a few occupied cells: rings must return exactly the occupied
	// ones at the right distance.
	pts := [][]float64{{0.5, 0.5}, {3.5, 0.5}, {0.5, 3.5}}
	g := Build(geom.MustFromRows(pts), 1.0)
	origin := g.CellIDAt([]int64{0, 0})
	count := 0
	g.ForEachNeighborRing(origin, 3, func(int32) { count++ })
	if count != 2 {
		t.Errorf("sparse ring 3: %d cells, want 2", count)
	}
	count = 0
	g.ForEachNeighborRing(origin, 2, func(int32) { count++ })
	if count != 0 {
		t.Errorf("sparse ring 2: %d cells, want 0", count)
	}
}

func TestMaxRing(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}, {10.5, 0.5}, {0.5, 6.5}}
	g := Build(geom.MustFromRows(pts), 1.0)
	origin := g.CellIDAt([]int64{0, 0})
	if got := g.MaxRing(origin); got != 10 {
		t.Errorf("MaxRing = %d, want 10", got)
	}
	far := g.CellIDAt([]int64{10, 0})
	if got := g.MaxRing(far); got != 10 {
		t.Errorf("MaxRing from far corner = %d, want 10", got)
	}
}

func TestRingZeroAndConcurrent(t *testing.T) {
	g := denseGrid(t, []int{4, 4})
	c := g.CellIDAt([]int64{1, 1})
	called := false
	g.ForEachNeighborRing(c, 0, func(int32) { called = true })
	if called {
		t.Error("ring 0 must be empty")
	}
	// Concurrent ring walks must not interfere (keyInto buffers are local).
	done := make(chan bool)
	for w := 0; w < 8; w++ {
		go func() {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 200; i++ {
				cell := int32(rng.Intn(g.NumCells()))
				g.ForEachNeighborRing(cell, 1+int64(rng.Intn(3)), func(int32) {})
				g.CellID([]float64{rng.Float64() * 4, rng.Float64() * 4})
			}
			done <- true
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
