// Package grid implements the on-line built uniform grid of the paper's
// approximation algorithms (§4.1, §5).
//
// A grid with side length L partitions R^d into axis-aligned cells of edge
// L; only non-empty cells are materialized ("no empty-cell is created").
// Approx-DPC uses L = d_cut/sqrt(d), so any two points in one cell are
// within d_cut of each other; S-Approx-DPC uses L = eps*d_cut/sqrt(d).
//
// Each cell carries the bookkeeping fields the algorithms maintain: the
// member points P(c), the maximum-density member p*(c), the minimum member
// density, and the neighbor-cell id set N(c). The grid itself only manages
// membership and coordinates; the clustering algorithms fill the rest
// during their local-density phase, exactly as described in the paper.
package grid

import (
	"encoding/binary"
	"math"

	"repro/internal/geom"
)

// Cell is one non-empty grid cell.
type Cell struct {
	// Coords are the integer cell coordinates (floor(p/side) per dim).
	Coords []int64
	// Points are dataset indices of the members P(c).
	Points []int32
	// Best is p*(c), the member with maximum local density; -1 until the
	// owning algorithm sets it.
	Best int32
	// MinRho is min_{P(c)} rho; meaningless until set by the algorithm.
	MinRho float64
	// Neighbors is N(c): ids of cells containing points p with
	// dist(p*(c), p) < d_cut that are not members of c.
	Neighbors []int32
}

// Grid is a sparse uniform grid over a dataset.
type Grid struct {
	Side  float64
	Dim   int
	Cells []Cell
	// PointCell maps every dataset index to the id of its cell.
	PointCell []int32
	index     map[string]int32
	keyBuf    []byte
	// coordLo/coordHi bound the occupied cell coordinates per dimension
	// (valid when at least one cell exists); MaxRing uses them.
	coordLo, coordHi []int64
}

// Build maps every point of the flat dataset into a grid with the given
// cell side length, creating cells on first touch in dataset order (so
// cell ids and member orders are deterministic).
func Build(ds *geom.Dataset, side float64) *Grid {
	if side <= 0 {
		panic("grid: non-positive side length")
	}
	d := ds.Dim
	if ds.N == 0 {
		d = 0
	}
	g := &Grid{
		Side:      side,
		Dim:       d,
		PointCell: make([]int32, ds.N),
		index:     make(map[string]int32),
		keyBuf:    make([]byte, 8*d),
	}
	g.coordLo = make([]int64, d)
	g.coordHi = make([]int64, d)
	coords := make([]int64, d)
	for i := 0; i < ds.N; i++ {
		g.coordsOf(ds.At(i), coords)
		if i == 0 {
			copy(g.coordLo, coords)
			copy(g.coordHi, coords)
		} else {
			for j, v := range coords {
				if v < g.coordLo[j] {
					g.coordLo[j] = v
				}
				if v > g.coordHi[j] {
					g.coordHi[j] = v
				}
			}
		}
		id := g.lookupOrCreate(coords)
		g.Cells[id].Points = append(g.Cells[id].Points, int32(i))
		g.PointCell[i] = id
	}
	return g
}

// SideForDCut returns the Approx-DPC cell edge d_cut/sqrt(d), which makes
// the cell diagonal exactly d_cut so that any two points sharing a cell are
// within d_cut of each other.
func SideForDCut(dcut float64, d int) float64 {
	return dcut / math.Sqrt(float64(d))
}

// NumCells returns the number of non-empty cells.
func (g *Grid) NumCells() int { return len(g.Cells) }

// coordsOf writes floor(p/side) per dimension into out.
func (g *Grid) coordsOf(p []float64, out []int64) {
	for j := range p {
		out[j] = int64(math.Floor(p[j] / g.Side))
	}
}

// key encodes coords using the grid's build-time buffer. It is NOT safe
// for concurrent use; Build is the only caller. Concurrent readers go
// through keyInto with their own buffer.
func (g *Grid) key(coords []int64) string {
	return keyInto(g.keyBuf, coords)
}

// keyInto encodes coords into buf (len >= 8*len(coords)) and returns the
// map key. Safe for concurrent use with distinct buffers.
func keyInto(buf []byte, coords []int64) string {
	for j, c := range coords {
		binary.LittleEndian.PutUint64(buf[8*j:], uint64(c))
	}
	return string(buf[:8*len(coords)])
}

func (g *Grid) lookupOrCreate(coords []int64) int32 {
	k := g.key(coords)
	if id, ok := g.index[k]; ok {
		return id
	}
	id := int32(len(g.Cells))
	cc := make([]int64, len(coords))
	copy(cc, coords)
	g.Cells = append(g.Cells, Cell{Coords: cc, Best: -1})
	g.index[k] = id
	return id
}

// CellID returns the id of the cell containing p, or -1 when that cell is
// empty (was never created).
func (g *Grid) CellID(p []float64) int32 {
	coords := make([]int64, g.Dim)
	g.coordsOf(p, coords)
	return g.CellIDAt(coords)
}

// CellIDAt returns the id of the cell with the given integer coordinates,
// or -1 when it does not exist.
func (g *Grid) CellIDAt(coords []int64) int32 {
	buf := make([]byte, 8*g.Dim)
	if id, ok := g.index[keyInto(buf, coords)]; ok {
		return id
	}
	return -1
}

// Center returns the center point of cell c (cp_i in the paper's joint
// range search).
func (g *Grid) Center(c int32) []float64 {
	cell := &g.Cells[c]
	cp := make([]float64, g.Dim)
	for j, v := range cell.Coords {
		cp[j] = (float64(v) + 0.5) * g.Side
	}
	return cp
}

// ForEachNeighborCell invokes fn with the id of every existing cell whose
// integer coordinates differ from cell c's by at most `reach` in every
// dimension, excluding c itself. It is used by tests and by algorithms
// that enumerate the O(1)-size candidate neighborhood for fixed d.
func (g *Grid) ForEachNeighborCell(c int32, reach int64, fn func(id int32)) {
	base := g.Cells[c].Coords
	// When the coordinate neighborhood (2*reach+1)^d outnumbers the
	// occupied cells (common in high dimensions), scan the occupied cells
	// instead of enumerating coordinates.
	if vol, ok := hypercubeVolume(2*reach+1, g.Dim); !ok || vol > int64(len(g.Cells)) {
		for id := range g.Cells {
			if int32(id) == c {
				continue
			}
			if chebyshev(g.Cells[id].Coords, base) <= reach {
				fn(int32(id))
			}
		}
		return
	}
	cur := make([]int64, g.Dim)
	copy(cur, base)
	buf := make([]byte, 8*g.Dim)
	var rec func(dim int, moved bool)
	rec = func(dim int, moved bool) {
		if dim == g.Dim {
			if !moved {
				return
			}
			if id, ok := g.index[keyInto(buf, cur)]; ok {
				fn(id)
			}
			return
		}
		for dv := -reach; dv <= reach; dv++ {
			cur[dim] = base[dim] + dv
			rec(dim+1, moved || dv != 0)
		}
		cur[dim] = base[dim]
	}
	rec(0, false)
}
