package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBuildMembership(t *testing.T) {
	pts := [][]float64{
		{0.5, 0.5},   // cell (0,0)
		{0.9, 0.1},   // cell (0,0)
		{1.5, 0.5},   // cell (1,0)
		{-0.5, -0.5}, // cell (-1,-1)
	}
	g := Build(geom.MustFromRows(pts), 1.0)
	if g.NumCells() != 3 {
		t.Fatalf("NumCells = %d, want 3", g.NumCells())
	}
	if g.PointCell[0] != g.PointCell[1] {
		t.Error("points 0 and 1 should share a cell")
	}
	if g.PointCell[0] == g.PointCell[2] || g.PointCell[0] == g.PointCell[3] {
		t.Error("distinct cells expected")
	}
	// Every point must be in the member list of its cell.
	for i := range pts {
		found := false
		for _, m := range g.Cells[g.PointCell[i]].Points {
			if m == int32(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("point %d missing from its cell member list", i)
		}
	}
}

func TestCellID(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}}
	g := Build(geom.MustFromRows(pts), 1.0)
	if id := g.CellID([]float64{0.2, 0.7}); id != g.PointCell[0] {
		t.Errorf("CellID of co-resident point = %d, want %d", id, g.PointCell[0])
	}
	if id := g.CellID([]float64{5, 5}); id != -1 {
		t.Errorf("CellID of empty region = %d, want -1", id)
	}
	if id := g.CellIDAt([]int64{0, 0}); id != g.PointCell[0] {
		t.Errorf("CellIDAt = %d", id)
	}
}

func TestCellDiagonalProperty(t *testing.T) {
	// With side = d_cut/sqrt(d), any two points in the same cell are within
	// d_cut of each other. This is the correctness basis of Approx-DPC's
	// in-cell dependent-point rule.
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 8} {
		dcut := 10.0
		side := SideForDCut(dcut, d)
		pts := make([][]float64, 500)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64()*100 - 50
			}
			pts[i] = p
		}
		g := Build(geom.MustFromRows(pts), side)
		for _, c := range g.Cells {
			for _, a := range c.Points {
				for _, b := range c.Points {
					if dist := geom.Dist(pts[a], pts[b]); dist > dcut+1e-9 {
						t.Fatalf("d=%d: co-cell points at distance %v > d_cut %v", d, dist, dcut)
					}
				}
			}
		}
	}
}

func TestCenter(t *testing.T) {
	pts := [][]float64{{2.5, 3.5}}
	g := Build(geom.MustFromRows(pts), 1.0)
	c := g.Center(g.PointCell[0])
	if c[0] != 2.5 || c[1] != 3.5 {
		t.Errorf("Center = %v, want [2.5 3.5]", c)
	}
	// The center must be within half the cell diagonal of every member.
	half := g.Side * math.Sqrt(2) / 2
	if geom.Dist(c, pts[0]) > half+1e-12 {
		t.Errorf("center too far from member")
	}
}

func TestNegativeCoords(t *testing.T) {
	pts := [][]float64{{-0.1, -0.1}, {-0.9, -0.9}, {0.1, 0.1}}
	g := Build(geom.MustFromRows(pts), 1.0)
	if g.PointCell[0] != g.PointCell[1] {
		t.Error("both negative points belong to cell (-1,-1)")
	}
	if g.PointCell[0] == g.PointCell[2] {
		t.Error("cells (-1,-1) and (0,0) must differ")
	}
}

func TestForEachNeighborCell(t *testing.T) {
	// 3x3 block of occupied cells; the center cell has 8 neighbors at
	// reach 1 and itself is excluded.
	var pts [][]float64
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			pts = append(pts, []float64{float64(x) + 0.5, float64(y) + 0.5})
		}
	}
	g := Build(geom.MustFromRows(pts), 1.0)
	center := g.CellIDAt([]int64{1, 1})
	if center < 0 {
		t.Fatal("center cell missing")
	}
	seen := map[int32]bool{}
	g.ForEachNeighborCell(center, 1, func(id int32) {
		if seen[id] {
			t.Fatalf("neighbor %d visited twice", id)
		}
		seen[id] = true
	})
	if len(seen) != 8 {
		t.Errorf("neighbors = %d, want 8", len(seen))
	}
	if seen[center] {
		t.Error("center must be excluded")
	}
	// Corner cell has only 3 neighbors.
	corner := g.CellIDAt([]int64{0, 0})
	count := 0
	g.ForEachNeighborCell(corner, 1, func(int32) { count++ })
	if count != 3 {
		t.Errorf("corner neighbors = %d, want 3", count)
	}
}

func TestDeterministicCellOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 300)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
	}
	a := Build(geom.MustFromRows(pts), 1.5)
	b := Build(geom.MustFromRows(pts), 1.5)
	if a.NumCells() != b.NumCells() {
		t.Fatal("cell counts differ between identical builds")
	}
	for i := range a.Cells {
		if len(a.Cells[i].Points) != len(b.Cells[i].Points) {
			t.Fatalf("cell %d member counts differ", i)
		}
		for j := range a.Cells[i].Points {
			if a.Cells[i].Points[j] != b.Cells[i].Points[j] {
				t.Fatalf("cell %d member order differs", i)
			}
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	g := Build(&geom.Dataset{}, 1.0)
	if g.NumCells() != 0 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
}

func TestAllPointsAssigned(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 1000)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	g := Build(geom.MustFromRows(pts), 2.0)
	total := 0
	for _, c := range g.Cells {
		total += len(c.Points)
	}
	if total != len(pts) {
		t.Errorf("sum of cell members = %d, want %d", total, len(pts))
	}
}
