package grid

// ForEachNeighborRing invokes fn with the id of every existing cell at
// Chebyshev distance exactly `ring` from cell c (ring >= 1). Each surface
// cell is visited once: for each dimension j, the j-th coordinate is
// pinned to +-ring while dimensions before j range over (-ring, ring) and
// dimensions after j range over [-ring, ring], which tiles the hypercube
// surface without overlap. DPCG's dependent-point search expands these
// rings outward.
func (g *Grid) ForEachNeighborRing(c int32, ring int64, fn func(id int32)) {
	if ring < 1 {
		return
	}
	base := g.Cells[c].Coords
	// Surface size (2r+1)^d - (2r-1)^d can dwarf the occupied cell count
	// in high dimensions; scan occupied cells in that regime.
	if vol, ok := hypercubeVolume(2*ring+1, g.Dim); !ok || vol > int64(len(g.Cells)) {
		for id := range g.Cells {
			if int32(id) != c && chebyshev(g.Cells[id].Coords, base) == ring {
				fn(int32(id))
			}
		}
		return
	}
	cur := make([]int64, g.Dim)
	copy(cur, base)
	buf := make([]byte, 8*g.Dim)
	for pin := 0; pin < g.Dim; pin++ {
		for _, side := range []int64{-ring, ring} {
			cur[pin] = base[pin] + side
			g.ringRec(cur, base, buf, pin, 0, ring, fn)
			cur[pin] = base[pin]
		}
	}
}

// ringRec fills the non-pinned dimensions: dims < pin range in
// (-ring, ring), dims > pin range in [-ring, ring].
func (g *Grid) ringRec(cur, base []int64, buf []byte, pin, dim int, ring int64, fn func(id int32)) {
	if dim == g.Dim {
		if id, ok := g.index[keyInto(buf, cur)]; ok {
			fn(id)
		}
		return
	}
	if dim == pin {
		g.ringRec(cur, base, buf, pin, dim+1, ring, fn)
		return
	}
	lo, hi := -ring, ring
	if dim < pin {
		lo, hi = -ring+1, ring-1
	}
	for dv := lo; dv <= hi; dv++ {
		cur[dim] = base[dim] + dv
		g.ringRec(cur, base, buf, pin, dim+1, ring, fn)
	}
	cur[dim] = base[dim]
}

// hypercubeVolume returns side^dim, with ok=false on overflow past 2^40.
func hypercubeVolume(side int64, dim int) (int64, bool) {
	v := int64(1)
	for i := 0; i < dim; i++ {
		v *= side
		if v > 1<<40 {
			return 0, false
		}
	}
	return v, true
}

// chebyshev returns the L-infinity distance between two coordinate vectors.
func chebyshev(a, b []int64) int64 {
	var m int64
	for j := range a {
		d := a[j] - b[j]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// MaxRing returns the largest Chebyshev distance from cell c to any
// occupied cell — the outermost ring a ring-expanding search ever needs.
func (g *Grid) MaxRing(c int32) int64 {
	base := g.Cells[c].Coords
	var max int64
	for j := 0; j < g.Dim; j++ {
		if v := base[j] - g.coordLo[j]; v > max {
			max = v
		}
		if v := g.coordHi[j] - base[j]; v > max {
			max = v
		}
	}
	return max
}
