package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, -1}
	if got := RandIndex(a, a); got != 1 {
		t.Errorf("RandIndex(a,a) = %v, want 1", got)
	}
}

func TestRandIndexPermutationInvariant(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	b := []int32{5, 5, 9, 9, 7, 7} // same partition, renamed
	if got := RandIndex(a, b); got != 1 {
		t.Errorf("renamed partition: RandIndex = %v, want 1", got)
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	// Classic small example: a = {0,0,1,1}, b = {0,1,1,1}.
	// Pairs: (0,1) together in a, apart in b -> disagree.
	// (2,3) together in both. (0,2),(0,3),(1,2),(1,3): apart in a;
	// (1,2),(1,3) together in b -> disagree. Agreements = 3 of 6.
	a := []int32{0, 0, 1, 1}
	b := []int32{0, 1, 1, 1}
	if got := RandIndex(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RandIndex = %v, want 0.5", got)
	}
}

func TestRandIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(4)) - 1
			b[i] = int32(rng.Intn(4)) - 1
		}
		agree := 0
		pairs := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs++
				if (a[i] == a[j]) == (b[i] == b[j]) {
					agree++
				}
			}
		}
		want := float64(agree) / float64(pairs)
		if got := RandIndex(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: RandIndex = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestRandIndexBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(6))
			b[i] = int32(rng.Intn(6))
		}
		ri := RandIndex(a, b)
		return ri >= 0 && ri <= 1 && RandIndex(a, b) == RandIndex(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Errorf("ARI(a,a) = %v, want 1", got)
	}
	// Independent labelings: ARI near 0 (can be slightly negative).
	rng := rand.New(rand.NewSource(2))
	n := 5000
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(5))
		y[i] = int32(rng.Intn(5))
	}
	if got := AdjustedRandIndex(x, y); math.Abs(got) > 0.05 {
		t.Errorf("ARI of independent labelings = %v, want ~0", got)
	}
	// ARI must be below RI for imperfect matches on skewed partitions.
	b := []int32{0, 0, 1, 1, 2, 0}
	if AdjustedRandIndex(a, b) >= RandIndex(a, b) {
		t.Error("ARI should not exceed RI here")
	}
}

func TestPurity(t *testing.T) {
	truth := []int32{0, 0, 0, 1, 1, 1}
	pred := []int32{5, 5, 5, 8, 8, 8}
	if got := Purity(truth, pred); got != 1 {
		t.Errorf("pure clustering purity = %v", got)
	}
	pred2 := []int32{5, 5, 8, 8, 8, 8}
	if got := Purity(truth, pred2); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("purity = %v, want 5/6", got)
	}
	if got := Purity(nil, nil); got != 1 {
		t.Errorf("empty purity = %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"RandIndex":         func() { RandIndex([]int32{1}, []int32{1, 2}) },
		"AdjustedRandIndex": func() { AdjustedRandIndex([]int32{1}, []int32{1, 2}) },
		"Purity":            func() { Purity([]int32{1}, []int32{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTinyInputs(t *testing.T) {
	if got := RandIndex([]int32{0}, []int32{5}); got != 1 {
		t.Errorf("single point RI = %v", got)
	}
	if got := AdjustedRandIndex(nil, nil); got != 1 {
		t.Errorf("empty ARI = %v", got)
	}
}

func TestMeasureMem(t *testing.T) {
	var sink [][]byte
	got := MeasureMem(func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1<<20))
		}
	})
	if got < 32<<20 {
		t.Errorf("MeasureMem reported %d bytes for a 64MB allocation", got)
	}
	_ = sink
	sink = nil
	if FormatMB(64<<20) != "64" {
		t.Errorf("FormatMB = %q", FormatMB(64<<20))
	}
}
