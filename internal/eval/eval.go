// Package eval provides the measurement machinery of the paper's
// experiments: the Rand index used for all accuracy tables (ground truth
// is Ex-DPC's labelling), the adjusted Rand index, purity, and
// memory-usage measurement for Table 7.
package eval

import (
	"fmt"
	"runtime"
)

// contingency builds the joint label-count table; noise labels (-1) are
// treated as one ordinary class, as the paper's Rand-index comparisons of
// full labelings imply.
func contingency(a, b []int32) (map[[2]int32]float64, map[int32]float64, map[int32]float64) {
	joint := make(map[[2]int32]float64)
	ma := make(map[int32]float64)
	mb := make(map[int32]float64)
	for i := range a {
		joint[[2]int32{a[i], b[i]}]++
		ma[a[i]]++
		mb[b[i]]++
	}
	return joint, ma, mb
}

func choose2(x float64) float64 { return x * (x - 1) / 2 }

// RandIndex returns the Rand index of two labelings in [0, 1]; 1 means
// identical partitions. It runs in O(n + k_a * k_b) via the contingency
// table, so it is usable at the paper's dataset sizes.
func RandIndex(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("eval: label slices of different lengths")
	}
	n := float64(len(a))
	if n < 2 {
		return 1
	}
	joint, ma, mb := contingency(a, b)
	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range ma {
		sumA += choose2(c)
	}
	for _, c := range mb {
		sumB += choose2(c)
	}
	total := choose2(n)
	// Disagreements: pairs together in one partition but not the other.
	disagree := sumA + sumB - 2*sumJoint
	return 1 - disagree/total
}

// AdjustedRandIndex returns the chance-corrected Rand index (Hubert &
// Arabie); 1 for identical partitions, ~0 for independent ones.
func AdjustedRandIndex(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("eval: label slices of different lengths")
	}
	n := float64(len(a))
	if n < 2 {
		return 1
	}
	joint, ma, mb := contingency(a, b)
	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range ma {
		sumA += choose2(c)
	}
	for _, c := range mb {
		sumB += choose2(c)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	max := (sumA + sumB) / 2
	if max == expected {
		return 1
	}
	return (sumJoint - expected) / (max - expected)
}

// Purity returns the fraction of points whose predicted cluster's majority
// true label matches their own true label.
func Purity(truth, pred []int32) float64 {
	if len(truth) != len(pred) {
		panic("eval: label slices of different lengths")
	}
	if len(truth) == 0 {
		return 1
	}
	counts := make(map[int32]map[int32]float64)
	for i := range pred {
		m, ok := counts[pred[i]]
		if !ok {
			m = make(map[int32]float64)
			counts[pred[i]] = m
		}
		m[truth[i]]++
	}
	var correct float64
	for _, m := range counts {
		best := 0.0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return correct / float64(len(truth))
}

// MeasureMem runs fn and returns the peak live-heap growth it caused, in
// bytes, mirroring the paper's Table 7 per-algorithm memory comparison.
// The measurement triggers GC before and after, so it reports retained
// allocations of fn's result plus transient structures still live at the
// end; it is inherently approximate under Go's GC.
func MeasureMem(fn func()) uint64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// FormatMB renders bytes as a Table 7 style megabyte string.
func FormatMB(b uint64) string {
	return fmt.Sprintf("%.0f", float64(b)/(1<<20))
}
