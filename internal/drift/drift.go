// Package drift tracks how far the points a served model labels have
// moved from the distribution the model was fitted on, using O(1) state
// and O(1) work per observation so it can live on the assign hot path.
//
// The observed quantity is each query point's distance to the center of
// the cluster it was assigned to (NaN for points labeled noise). At fit
// time the same quantity over the training points is summarized into a
// Reference (exact sample quantiles plus the training halo rate); at
// serve time a Tracker folds every assigned point into P² streaming
// quantile estimators and a halo counter, closing a window every
// Config.WindowPoints observations. Each closed window yields a drift
// score — the relative shift of the window's q50/q90 against the
// reference — and the tracker latches "tripped" when the score or the
// window halo rate crosses its configured threshold. The serving layer
// reacts to a trip by refitting in the background and swapping the
// model atomically; this package only measures.
package drift

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Config holds the drift-detection policy. The zero value is usable:
// every field has a serving-grade default, and a threshold left <= 0
// disables that trip condition (collection still runs).
type Config struct {
	// WindowPoints is the number of observations per window; a window
	// close is when the score is computed and the trip condition
	// evaluated. <= 0 means 4096.
	WindowPoints int
	// MinPoints gates the trip: no window may trip before this many
	// total observations, so a model never refits off a handful of
	// early outliers. <= 0 means 2*WindowPoints.
	MinPoints int64
	// ScoreThreshold trips the tracker when a closed window's drift
	// score — the relative q50/q90 shift against the fit-time
	// reference — reaches it. <= 0 disables the score trip.
	ScoreThreshold float64
	// HaloThreshold trips the tracker when a closed window's halo
	// (noise-label) rate reaches it. <= 0 disables the halo trip.
	HaloThreshold float64
	// History is how many closed windows Status reports; <= 0 means 8.
	History int
	// Cooldown is the minimum time between background refits of one
	// model. It is read by the serving layer, not the tracker; <= 0
	// means 30s.
	Cooldown time.Duration
	// MaxRefSample caps the training points sampled into the fit-time
	// reference; <= 0 means 4096.
	MaxRefSample int
	// SampleEvery strides the quantile-sketch observations: only every
	// k-th assigned point pays the extra center-distance computation and
	// sketch update. Halo (noise) rates are always counted over every
	// point — a label comparison costs nothing — so only the distance
	// quantiles are sampled. <= 0 means 16; 1 observes every point.
	SampleEvery int
}

func (c Config) windowPoints() int {
	if c.WindowPoints > 0 {
		return c.WindowPoints
	}
	return 4096
}

func (c Config) minPoints() int64 {
	if c.MinPoints > 0 {
		return c.MinPoints
	}
	return 2 * int64(c.windowPoints())
}

func (c Config) history() int {
	if c.History > 0 {
		return c.History
	}
	return 8
}

// RefitCooldown returns the effective minimum spacing between
// background refits.
func (c Config) RefitCooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 30 * time.Second
}

// RefSample returns the effective reference sample cap.
func (c Config) RefSample() int {
	if c.MaxRefSample > 0 {
		return c.MaxRefSample
	}
	return 4096
}

// SampleStride returns the effective sketch-sampling stride.
func (c Config) SampleStride() int {
	if c.SampleEvery > 0 {
		return c.SampleEvery
	}
	return 16
}

// Reference is the fit-time summary a tracker scores against: exact
// quantiles of the training points' distance to their assigned centers
// and the training halo (noise) rate.
type Reference struct {
	Q50      float64 `json:"q50"`
	Q90      float64 `json:"q90"`
	HaloRate float64 `json:"halo_rate"`
	// N is how many training points the quantiles were computed from
	// (noise excluded).
	N int `json:"n"`
}

// NewReference summarizes fit-time center distances. dists holds one
// entry per sampled training point (NaN marks a noise point); the
// quantiles are exact nearest-rank over the non-NaN entries.
func NewReference(dists []float64) Reference {
	clean := make([]float64, 0, len(dists))
	halo := 0
	for _, d := range dists {
		if math.IsNaN(d) {
			halo++
			continue
		}
		clean = append(clean, d)
	}
	ref := Reference{N: len(clean)}
	if len(dists) > 0 {
		ref.HaloRate = float64(halo) / float64(len(dists))
	}
	if len(clean) > 0 {
		sort.Float64s(clean)
		ref.Q50 = nearestRank(clean, 0.5)
		ref.Q90 = nearestRank(clean, 0.9)
	}
	return ref
}

// nearestRank returns the q-quantile of a sorted slice by the
// nearest-rank definition (ceil(q*n), 1-based).
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	r := int(math.Ceil(q * float64(len(sorted))))
	if r < 1 {
		r = 1
	}
	if r > len(sorted) {
		r = len(sorted)
	}
	return sorted[r-1]
}

// Window is the summary of one closed observation window.
type Window struct {
	Count    int64   `json:"count"`
	Halo     int64   `json:"halo"`
	HaloRate float64 `json:"halo_rate"`
	Q50      float64 `json:"q50"`
	Q90      float64 `json:"q90"`
	Score    float64 `json:"score"`
}

// Status is a point-in-time snapshot of a tracker (the /v1/drift body's
// measurement half).
type Status struct {
	// Observed and Halo are lifetime counts since the tracker was
	// created (i.e. since the served model was fitted or last swapped).
	Observed int64 `json:"observed"`
	Halo     int64 `json:"halo"`
	// HaloRate, Q50, Q90, and Score reflect the most recent closed
	// window, or the live partial window before the first close.
	HaloRate float64 `json:"halo_rate"`
	Q50      float64 `json:"q50"`
	Q90      float64 `json:"q90"`
	Score    float64 `json:"score"`
	// Tripped latches once any window crosses a threshold; it resets
	// only when the tracker is replaced after a model swap.
	Tripped   bool      `json:"tripped"`
	Reference Reference `json:"reference"`
	// Windows lists up to Config.History closed windows, oldest first.
	Windows []Window `json:"windows,omitempty"`
}

// Tracker accumulates assign-path observations for one served model.
// All methods are safe for concurrent use; ObserveBatch takes one lock
// per batch, not per point.
type Tracker struct {
	cfg Config
	ref Reference

	mu       sync.Mutex
	observed int64
	halo     int64

	// Current (partial) window.
	winCount int64
	winHalo  int64
	q50, q90 p2

	windows []Window // closed windows, oldest first, capped at history
	last    Window   // most recent closed window (zero before the first)
	closed  bool     // at least one window has closed
	tripped bool
}

// NewTracker creates a tracker scoring against ref.
func NewTracker(cfg Config, ref Reference) *Tracker {
	t := &Tracker{cfg: cfg, ref: ref}
	t.q50.init(0.5)
	t.q90.init(0.9)
	return t
}

// Config returns the tracker's policy.
func (t *Tracker) Config() Config { return t.cfg }

// Reference returns the fit-time reference the tracker scores against.
func (t *Tracker) Reference() Reference { return t.ref }

// ObserveBatch folds one labeled batch into the tracker: dists holds
// each point's distance to its assigned cluster's center, NaN for
// points labeled noise. It reports whether this batch newly tripped the
// tracker (a latched trip is reported once).
func (t *Tracker) ObserveBatch(dists []float64) (tripped bool) {
	if len(dists) == 0 {
		return false
	}
	win := int64(t.cfg.windowPoints())
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range dists {
		t.observed++
		t.winCount++
		if math.IsNaN(d) {
			t.halo++
			t.winHalo++
		} else {
			t.q50.observe(d)
			t.q90.observe(d)
		}
		if t.winCount >= win {
			if t.closeWindowLocked() {
				tripped = true
			}
		}
	}
	return tripped
}

// ObserveSampled folds one labeled batch into the tracker in bulk:
// total points were assigned, halo of them were labeled noise, and
// dists holds the center distances of a sampled subset (NaN entries are
// skipped — their noise is already in halo). This is the hot-path form:
// the caller counts halo from labels, which is nearly free, and pays
// the O(dim) distance plus sketch update only every Config.SampleEvery
// points. Counts are exact; only the quantile sketch is sampled. It
// reports whether this batch newly tripped the tracker.
func (t *Tracker) ObserveSampled(total, halo int64, dists []float64) (tripped bool) {
	if total <= 0 {
		return false
	}
	win := int64(t.cfg.windowPoints())
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observed += total
	t.halo += halo
	t.winCount += total
	t.winHalo += halo
	for _, d := range dists {
		if !math.IsNaN(d) {
			t.q50.observe(d)
			t.q90.observe(d)
		}
	}
	if t.winCount >= win {
		tripped = t.closeWindowLocked()
	}
	return tripped
}

// closeWindowLocked finalizes the current window, scores it, and
// evaluates the trip condition. It reports whether this close latched a
// new trip.
func (t *Tracker) closeWindowLocked() bool {
	w := Window{
		Count: t.winCount,
		Halo:  t.winHalo,
		Q50:   t.q50.estimate(),
		Q90:   t.q90.estimate(),
	}
	if w.Count > 0 {
		w.HaloRate = float64(w.Halo) / float64(w.Count)
	}
	w.Score = score(w, t.ref)
	t.last, t.closed = w, true
	t.windows = append(t.windows, w)
	if h := t.cfg.history(); len(t.windows) > h {
		t.windows = t.windows[len(t.windows)-h:]
	}
	t.winCount, t.winHalo = 0, 0
	t.q50.init(0.5)
	t.q90.init(0.9)

	if t.tripped || t.observed < t.cfg.minPoints() {
		return false
	}
	if (t.cfg.ScoreThreshold > 0 && w.Score >= t.cfg.ScoreThreshold) ||
		(t.cfg.HaloThreshold > 0 && w.HaloRate >= t.cfg.HaloThreshold) {
		t.tripped = true
		return true
	}
	return false
}

// score is the drift score of one window against the reference: the
// larger relative shift of its q50/q90. A reference quantile of zero
// (degenerate training set) contributes nothing — the halo threshold
// still covers that regime.
func score(w Window, ref Reference) float64 {
	s := 0.0
	if ref.Q50 > 0 {
		s = math.Abs(w.Q50-ref.Q50) / ref.Q50
	}
	if ref.Q90 > 0 {
		if v := math.Abs(w.Q90-ref.Q90) / ref.Q90; v > s {
			s = v
		}
	}
	return s
}

// Tripped reports whether the tracker has latched a trip.
func (t *Tracker) Tripped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tripped
}

// Status snapshots the tracker.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		Observed:  t.observed,
		Halo:      t.halo,
		Tripped:   t.tripped,
		Reference: t.ref,
		Windows:   append([]Window(nil), t.windows...),
	}
	if t.closed {
		st.HaloRate = t.last.HaloRate
		st.Q50 = t.last.Q50
		st.Q90 = t.last.Q90
		st.Score = t.last.Score
	} else if t.winCount > 0 {
		// Before the first window closes, report the live partial window
		// so /v1/drift is informative from the first assign.
		w := Window{
			Count: t.winCount, Halo: t.winHalo,
			Q50: t.q50.estimate(), Q90: t.q90.estimate(),
		}
		w.HaloRate = float64(w.Halo) / float64(w.Count)
		st.HaloRate = w.HaloRate
		st.Q50, st.Q90 = w.Q50, w.Q90
		st.Score = score(w, t.ref)
	}
	return st
}

// p2 is the P² streaming quantile estimator of Jain & Chlamtac (1985):
// five markers tracking the min, the p/2, p, and (1+p)/2 quantiles, and
// the max, adjusted with a piecewise-parabolic prediction per
// observation — O(1) state and O(1) work, no stored samples.
type p2 struct {
	p     float64
	n     int64      // observations so far
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dwant [5]float64 // desired-position increments per observation
}

func (s *p2) init(p float64) {
	*s = p2{p: p}
	s.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	s.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

func (s *p2) observe(x float64) {
	if s.n < 5 {
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			// Initial markers are the first five observations, sorted.
			q := s.q[:]
			sort.Float64s(q)
			for i := range s.pos {
				s.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Locate the cell and update the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.dwant[i]
	}
	s.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qn := s.parabolic(i, sign)
			if s.q[i-1] < qn && qn < s.q[i+1] {
				s.q[i] = qn
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction for
// moving marker i by sign (+1/-1) positions.
func (s *p2) parabolic(i int, sign float64) float64 {
	return s.q[i] + sign/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+sign)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-sign)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction when the parabolic one would
// leave the markers unordered.
func (s *p2) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return s.q[i] + sign*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// estimate returns the current quantile estimate: the center marker
// once five observations are in, the nearest-rank quantile of the
// stored prefix before that (0 with no observations).
func (s *p2) estimate() float64 {
	if s.n >= 5 {
		return s.q[2]
	}
	if s.n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.q[:s.n]...)
	sort.Float64s(sorted)
	return nearestRank(sorted, s.p)
}
