package drift

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestP2Accuracy checks the streaming estimator against exact sample
// quantiles on uniform and skewed inputs.
func TestP2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 100 }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 10 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 50000
			var s50, s90 p2
			s50.init(0.5)
			s90.init(0.9)
			xs := make([]float64, n)
			for i := range xs {
				x := tc.gen()
				xs[i] = x
				s50.observe(x)
				s90.observe(x)
			}
			sort.Float64s(xs)
			q50, q90 := nearestRank(xs, 0.5), nearestRank(xs, 0.9)
			if rel := math.Abs(s50.estimate()-q50) / q50; rel > 0.05 {
				t.Errorf("q50 estimate %g vs exact %g (rel %g)", s50.estimate(), q50, rel)
			}
			if rel := math.Abs(s90.estimate()-q90) / q90; rel > 0.05 {
				t.Errorf("q90 estimate %g vs exact %g (rel %g)", s90.estimate(), q90, rel)
			}
		})
	}
}

func TestP2SmallSamples(t *testing.T) {
	var s p2
	s.init(0.5)
	if got := s.estimate(); got != 0 {
		t.Errorf("empty estimate = %g, want 0", got)
	}
	s.observe(3)
	if got := s.estimate(); got != 3 {
		t.Errorf("1-sample estimate = %g, want 3", got)
	}
	s.observe(1)
	s.observe(2)
	if got := s.estimate(); got != 2 {
		t.Errorf("3-sample median = %g, want 2", got)
	}
}

func TestNewReference(t *testing.T) {
	nan := math.NaN()
	ref := NewReference([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, nan, nan})
	if ref.N != 10 {
		t.Errorf("N = %d, want 10", ref.N)
	}
	if want := 2.0 / 12.0; math.Abs(ref.HaloRate-want) > 1e-12 {
		t.Errorf("HaloRate = %g, want %g", ref.HaloRate, want)
	}
	if ref.Q50 != 5 {
		t.Errorf("Q50 = %g, want 5", ref.Q50)
	}
	if ref.Q90 != 9 {
		t.Errorf("Q90 = %g, want 9", ref.Q90)
	}
	empty := NewReference(nil)
	if empty.Q50 != 0 || empty.Q90 != 0 || empty.HaloRate != 0 {
		t.Errorf("empty reference = %+v, want zeros", empty)
	}
}

// TestTrackerScoreTrip streams an in-distribution phase followed by a
// shifted phase and checks the trip fires exactly once, after the shift.
func TestTrackerScoreTrip(t *testing.T) {
	ref := NewReference([]float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 3})
	cfg := Config{WindowPoints: 100, MinPoints: 200, ScoreThreshold: 1.0, History: 4}
	tr := NewTracker(cfg, ref)

	inDist := make([]float64, 100)
	for i := range inDist {
		inDist[i] = 2
	}
	for i := 0; i < 5; i++ {
		if tr.ObserveBatch(inDist) {
			t.Fatalf("tripped on in-distribution window %d", i)
		}
	}
	st := tr.Status()
	if st.Tripped || st.Score >= 1.0 {
		t.Fatalf("in-distribution status tripped=%v score=%g", st.Tripped, st.Score)
	}
	if len(st.Windows) != 4 {
		t.Fatalf("history kept %d windows, want 4 (capped)", len(st.Windows))
	}

	shifted := make([]float64, 100)
	for i := range shifted {
		shifted[i] = 20 // 10x the reference q50
	}
	if !tr.ObserveBatch(shifted) {
		t.Fatal("shifted window did not trip")
	}
	if tr.ObserveBatch(shifted) {
		t.Fatal("trip reported twice (must latch)")
	}
	st = tr.Status()
	if !st.Tripped {
		t.Fatal("Status.Tripped = false after trip")
	}
	if st.Score < 1.0 {
		t.Errorf("post-shift score = %g, want >= 1", st.Score)
	}
}

// TestTrackerHaloTrip drives the halo-rate condition: the score stays
// flat (distances match the reference) but most points become noise.
func TestTrackerHaloTrip(t *testing.T) {
	ref := NewReference([]float64{2, 2, 2, 2})
	cfg := Config{WindowPoints: 50, MinPoints: 50, HaloThreshold: 0.5}
	tr := NewTracker(cfg, ref)
	batch := make([]float64, 50)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = math.NaN()
		} else {
			batch[i] = 2
		}
	}
	if !tr.ObserveBatch(batch) {
		t.Fatal("50% halo window did not trip at threshold 0.5")
	}
	st := tr.Status()
	if st.HaloRate != 0.5 {
		t.Errorf("HaloRate = %g, want 0.5", st.HaloRate)
	}
	if st.Halo != 25 || st.Observed != 50 {
		t.Errorf("counts halo=%d observed=%d, want 25/50", st.Halo, st.Observed)
	}
}

// TestTrackerMinPoints verifies no trip can fire before MinPoints
// observations even when every window is wildly out of distribution.
func TestTrackerMinPoints(t *testing.T) {
	ref := NewReference([]float64{1, 1, 1, 1})
	cfg := Config{WindowPoints: 10, MinPoints: 100, ScoreThreshold: 0.5}
	tr := NewTracker(cfg, ref)
	far := []float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	for i := 0; i < 9; i++ {
		if tr.ObserveBatch(far) {
			t.Fatalf("tripped at %d observations, MinPoints=100", (i+1)*10)
		}
	}
	if !tr.ObserveBatch(far) {
		t.Fatal("did not trip once past MinPoints")
	}
}

// TestTrackerDisabledThresholds: both thresholds <= 0 means collection
// without trips.
func TestTrackerDisabledThresholds(t *testing.T) {
	tr := NewTracker(Config{WindowPoints: 10, MinPoints: 1}, NewReference([]float64{1}))
	far := []float64{99, 99, 99, 99, 99, 99, 99, 99, 99, 99}
	for i := 0; i < 20; i++ {
		if tr.ObserveBatch(far) {
			t.Fatal("tripped with both thresholds disabled")
		}
	}
	if st := tr.Status(); st.Score < 1 {
		t.Errorf("score = %g, want large (collection must still run)", st.Score)
	}
}

// TestTrackerPartialWindowStatus: before the first window closes the
// status reflects the live partial window.
func TestTrackerPartialWindowStatus(t *testing.T) {
	tr := NewTracker(Config{WindowPoints: 1000}, NewReference([]float64{1, 2, 3}))
	tr.ObserveBatch([]float64{4, 4, 4, 4, math.NaN()})
	st := tr.Status()
	if st.Observed != 5 || st.Halo != 1 {
		t.Fatalf("observed=%d halo=%d, want 5/1", st.Observed, st.Halo)
	}
	if st.Q50 != 4 {
		t.Errorf("partial-window q50 = %g, want 4", st.Q50)
	}
	if st.HaloRate != 0.2 {
		t.Errorf("partial-window halo rate = %g, want 0.2", st.HaloRate)
	}
}

// TestTrackerConcurrent hammers one tracker from many goroutines under
// -race: batches, status reads, and trip checks interleaved.
func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(
		Config{WindowPoints: 64, MinPoints: 64, ScoreThreshold: 2},
		NewReference([]float64{1, 2, 3, 4, 5}),
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			batch := make([]float64, 33)
			for it := 0; it < 50; it++ {
				for i := range batch {
					if rng.Intn(10) == 0 {
						batch[i] = math.NaN()
					} else {
						batch[i] = rng.Float64() * 10
					}
				}
				tr.ObserveBatch(batch)
				_ = tr.Status()
				_ = tr.Tripped()
			}
		}(int64(g))
	}
	wg.Wait()
	st := tr.Status()
	if st.Observed != 8*50*33 {
		t.Errorf("observed = %d, want %d", st.Observed, 8*50*33)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.windowPoints() != 4096 {
		t.Errorf("windowPoints = %d", c.windowPoints())
	}
	if c.minPoints() != 8192 {
		t.Errorf("minPoints = %d", c.minPoints())
	}
	if c.history() != 8 {
		t.Errorf("history = %d", c.history())
	}
	if c.RefitCooldown() <= 0 {
		t.Errorf("RefitCooldown = %v", c.RefitCooldown())
	}
	if c.RefSample() != 4096 {
		t.Errorf("RefSample = %d", c.RefSample())
	}
}
