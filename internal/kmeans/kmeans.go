// Package kmeans implements Lloyd's algorithm with k-means++ seeding
// (Arthur & Vassilvitskii, SODA 2007). The CFSFDP-A baseline (Bai et al.,
// Pattern Recognition 2017) uses k-means centroids as pivot points for its
// triangle-inequality filter; this package provides that preprocessing.
package kmeans

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Result holds a k-means clustering.
type Result struct {
	// Centroids are the k cluster centers (some may be unused when k > n).
	Centroids [][]float64
	// Assign maps every point to its centroid index.
	Assign []int
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Run clusters the flat dataset into k groups, iterating at most maxIter
// times or until assignments stop changing. The seed drives k-means++
// initialization. k is clamped to [1, ds.N].
func Run(ds *geom.Dataset, k, maxIter int, seed int64) *Result {
	n := ds.N
	if n == 0 {
		return &Result{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 1
	}
	d := ds.Dim
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(ds, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, d)
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := 0; j < d; j++ {
				sums[c][j] = 0
			}
		}
		for i := 0; i < n; i++ {
			p := ds.At(i)
			best, bestSq := 0, math.Inf(1)
			for c, ct := range centroids {
				if sq := geom.SqDist(p, ct); sq < bestSq {
					best, bestSq = c, sq
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			counts[best]++
			for j := 0; j < d; j++ {
				sums[best][j] += p[j]
			}
		}
		if !changed {
			break
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point; keeps all k
				// pivots useful for the triangle-inequality filter.
				copy(centroids[c], ds.At(rng.Intn(n)))
				continue
			}
			for j := 0; j < d; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return &Result{Centroids: centroids, Assign: assign, Iters: iters}
}

// seedPlusPlus picks k initial centroids with D^2 weighting.
func seedPlusPlus(ds *geom.Dataset, k int, rng *rand.Rand) [][]float64 {
	n := ds.N
	centroids := make([][]float64, 0, k)
	first := geom.Clone(ds.At(rng.Intn(n)))
	centroids = append(centroids, first)
	sqd := make([]float64, n)
	for i := 0; i < n; i++ {
		sqd[i] = geom.SqDist(ds.At(i), first)
	}
	for len(centroids) < k {
		var total float64
		for _, v := range sqd {
			total += v
		}
		var next []float64
		if total == 0 {
			// All remaining points coincide with a centroid; any choice works.
			next = geom.Clone(ds.At(rng.Intn(n)))
		} else {
			target := rng.Float64() * total
			idx := n - 1
			var acc float64
			for i, v := range sqd {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
			next = geom.Clone(ds.At(idx))
		}
		centroids = append(centroids, next)
		for i := 0; i < n; i++ {
			if sq := geom.SqDist(ds.At(i), next); sq < sqd[i] {
				sqd[i] = sq
			}
		}
	}
	return centroids
}

// Inertia returns the sum of squared distances of points to their assigned
// centroids — the k-means objective, exposed for tests.
func Inertia(ds *geom.Dataset, r *Result) float64 {
	var s float64
	for i := 0; i < ds.N; i++ {
		s += geom.SqDist(ds.At(i), r.Centroids[r.Assign[i]])
	}
	return s
}
