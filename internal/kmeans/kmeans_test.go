package kmeans

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func gauss2(rng *rand.Rand, cx, cy, sd float64, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{cx + rng.NormFloat64()*sd, cy + rng.NormFloat64()*sd}
	}
	return pts
}

func TestSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts [][]float64
	pts = append(pts, gauss2(rng, 0, 0, 1, 100)...)
	pts = append(pts, gauss2(rng, 100, 0, 1, 100)...)
	pts = append(pts, gauss2(rng, 0, 100, 1, 100)...)
	r := Run(geom.MustFromRows(pts), 3, 50, 7)
	// Each true group must be pure: all members share one assignment.
	for g := 0; g < 3; g++ {
		first := r.Assign[g*100]
		for i := g * 100; i < (g+1)*100; i++ {
			if r.Assign[i] != first {
				t.Fatalf("group %d split across k-means clusters", g)
			}
		}
	}
	// Centroids must sit near the true means.
	for _, c := range r.Centroids {
		ok := geom.Dist(c, []float64{0, 0}) < 5 ||
			geom.Dist(c, []float64{100, 0}) < 5 ||
			geom.Dist(c, []float64{0, 100}) < 5
		if !ok {
			t.Errorf("centroid %v far from every true mean", c)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gauss2(rng, 0, 0, 50, 400)
	i1 := Inertia(geom.MustFromRows(pts), Run(geom.MustFromRows(pts), 1, 30, 3))
	i8 := Inertia(geom.MustFromRows(pts), Run(geom.MustFromRows(pts), 8, 30, 3))
	if i8 >= i1 {
		t.Errorf("inertia with k=8 (%v) should be below k=1 (%v)", i8, i1)
	}
}

func TestKClamping(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	r := Run(geom.MustFromRows(pts), 10, 5, 1)
	if len(r.Centroids) != 2 {
		t.Errorf("k clamped to %d, want 2", len(r.Centroids))
	}
	r = Run(geom.MustFromRows(pts), 0, 5, 1)
	if len(r.Centroids) != 1 {
		t.Errorf("k=0 coerced to %d centroids, want 1", len(r.Centroids))
	}
}

func TestEmptyAndDuplicates(t *testing.T) {
	if r := Run(&geom.Dataset{}, 3, 5, 1); len(r.Centroids) != 0 {
		t.Error("empty input should give empty result")
	}
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{5, 5}
	}
	r := Run(geom.MustFromRows(pts), 4, 10, 1)
	for i := range pts {
		if geom.Dist(r.Centroids[r.Assign[i]], pts[i]) > 1e-9 {
			t.Fatal("duplicate points must map to a coincident centroid")
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := gauss2(rng, 10, 10, 5, 200)
	a := Run(geom.MustFromRows(pts), 5, 20, 99)
	b := Run(geom.MustFromRows(pts), 5, 20, 99)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestAssignmentIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := gauss2(rng, 0, 0, 20, 300)
	r := Run(geom.MustFromRows(pts), 6, 40, 5)
	for i, p := range pts {
		my := geom.SqDist(p, r.Centroids[r.Assign[i]])
		for _, c := range r.Centroids {
			if geom.SqDist(p, c) < my-1e-9 {
				t.Fatalf("point %d not assigned to nearest centroid", i)
			}
		}
	}
}
