package dpc_test

import (
	"math/rand"
	"testing"

	dpc "repro"
	"repro/datasets"
)

func blobs(rng *rand.Rand, k, per int, spacing, sd float64) [][]float64 {
	var pts [][]float64
	for c := 0; c < k; c++ {
		cx := float64(c%3+1) * spacing
		cy := float64(c/3+1) * spacing
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{cx + rng.NormFloat64()*sd, cy + rng.NormFloat64()*sd})
		}
	}
	return pts
}

func TestPublicQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blobs(rng, 6, 150, 200, 8)
	res, err := dpc.Cluster(pts, dpc.Params{DCut: 20, RhoMin: 4, DeltaMin: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 6 {
		t.Fatalf("found %d clusters, want 6", res.NumClusters())
	}
	for i, l := range res.Labels {
		if l == dpc.NoCluster {
			continue
		}
		if l < 0 || int(l) >= res.NumClusters() {
			t.Fatalf("label[%d] = %d out of range", i, l)
		}
	}
}

func TestByName(t *testing.T) {
	names := []string{"Scan", "R-tree + Scan", "LSH-DDP", "CFSFDP-A", "Ex-DPC", "Approx-DPC", "S-Approx-DPC"}
	for _, n := range names {
		alg, ok := dpc.ByName(n)
		if !ok || alg.Name() != n {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := dpc.ByName("nope"); ok {
		t.Error("unknown name accepted")
	}
	if len(dpc.Algorithms()) != 7 {
		t.Errorf("Algorithms() returned %d entries", len(dpc.Algorithms()))
	}
}

func TestDecisionGraphWorkflow(t *testing.T) {
	// The Figure 1 workflow: cluster with a permissive DeltaMin, read the
	// decision graph, pick a threshold for the known k, re-run.
	ds := datasets.SSet(2, 3000, 42)
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.01}
	res, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	dm, ok := dpc.SuggestDeltaMin(res, 15, ds.RhoMin)
	if !ok {
		t.Fatal("SuggestDeltaMin failed")
	}
	p.DeltaMin = dm
	res2, err := dpc.ClusterDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumClusters() != 15 {
		t.Errorf("decision-graph workflow found %d clusters, want 15", res2.NumClusters())
	}
	dg := dpc.DecisionGraph(res)
	if len(dg) != ds.Points.N {
		t.Errorf("decision graph size %d", len(dg))
	}
}

func TestMetricsExports(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	if dpc.RandIndex(a, a) != 1 || dpc.AdjustedRandIndex(a, a) != 1 || dpc.Purity(a, a) != 1 {
		t.Error("metric re-exports broken")
	}
}

func TestApproxMatchesExactOnDataset(t *testing.T) {
	ds := datasets.Syn(8000, 0.02, 7)
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DeltaMin, Workers: 4}
	ex, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := dpc.ClusterDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Centers) != len(ap.Centers) {
		t.Fatalf("center counts differ: %d vs %d", len(ex.Centers), len(ap.Centers))
	}
	if ri := dpc.RandIndex(ex.Labels, ap.Labels); ri < 0.95 {
		t.Errorf("Approx-DPC Rand index %.3f vs exact, want >= 0.95", ri)
	}
}
